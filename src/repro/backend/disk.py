"""DiskBackend: a persistent StorageBackend over mmap'd columnar segments.

The on-disk corpus is a directory::

    corpus/
      MANIFEST.json        # format, generation, active segment, version
      seg-00000001/
        columns.bin        # sealed node table (mmap'd)
        postings.bin       # sealed inverted index (mmap'd, lazy per term)
        stats.bin          # sealed penalty statistics
      wal.log              # fsync'd append log of post-segment ingests

Cold start is ``open()`` = read manifest → mmap segments → replay the WAL
tail — no XML parse, no index rebuild, no statistics scan.  The structural
``int32`` columns hydrate with one ``frombytes`` memcpy each (they must
stay mutable: WAL replay and live ingest splice onto them), while the two
heavy payloads — element text and postings — are served lazily out of the
mappings and never materialize wholesale.

Ingest is write-ahead: :meth:`DiskBackend.add_document` encodes the parsed
fragment, appends it to ``wal.log`` (CRC-framed, ``fsync`` before the call
returns), and only then splices it into the live corpus.  A torn write at
any byte leaves a prefix of whole records; :meth:`open` recovers exactly
that prefix and truncates the rest.  :meth:`DiskBackend.compact` folds the
WAL tail into a sealed segment of the next generation — the generation
number written into both the manifest and the WAL header fences each log
to its segment, so a crash between the two resets cannot double-apply
records.

``DiskBackend`` subclasses :class:`InMemoryBackend`: once the segment is
hydrated it *is* an in-memory backend over a corpus whose storage happens
to be borrowed from a mapping, so navigation, join kernels, growth
cascade, and the conformance surface are all inherited.
"""

from __future__ import annotations

import os
import shutil
import threading
from time import perf_counter

from repro.backend import diskfmt
from repro.obs.events import HUB
from repro.obs.metrics import REGISTRY
from repro.backend.memory import InMemoryBackend
from repro.backend.stats import DocumentStatistics
from repro.collection import Corpus
from repro.errors import CorruptStorageError, FleXPathError
from repro.ir.engine import IREngine
from repro.ir.index import InvertedIndex, Posting
from repro.xmltree.document import Document

WAL_NAME = "wal.log"
SEGMENT_PREFIX = "seg-"


def _segment_name(generation):
    return "%s%08d" % (SEGMENT_PREFIX, generation)


class DiskInvertedIndex(InvertedIndex):
    """An inverted index whose sealed postings decode lazily from a mapping.

    ``_postings`` holds only what has been touched: terms decoded on first
    probe, plus terms grown (or newly seen) by WAL-tail ingest.  A grown
    term hydrates its sealed posting *before* appending, so each term has
    exactly one live posting — never a sealed half and a tail half.
    """

    def __init__(self, document, mm, directory, text_elements, sealed_upto, name):
        self._document = document
        self._postings = {}
        self._mm = mm
        self._directory = directory
        self._name = name
        self._text_elements = text_elements
        self._indexed_upto = sealed_upto

    def posting(self, term):
        posting = self._postings.get(term)
        if posting is None:
            location = self._directory.get(term)
            if location is None:
                return None
            posting = diskfmt.decode_posting(
                self._mm, location[0], location[1], self._name
            )
            self._postings[term] = posting
            if REGISTRY.enabled:
                REGISTRY.inc("disk.posting_hydrations")
        return posting

    def _posting_for_append(self, term):
        posting = self.posting(term)
        if posting is None:
            posting = self._postings.setdefault(term, Posting())
        return posting

    @property
    def vocabulary_size(self):
        return len(self._directory.keys() | self._postings.keys())

    def materialize_all(self):
        """Decode every sealed posting; returns the complete postings map.

        Used by :meth:`DiskBackend.compact` to seal the full vocabulary
        into the next segment generation.
        """
        for term in self._directory:
            self.posting(term)
        return self._postings


class DiskBackend(InMemoryBackend):
    """StorageBackend persisted as mmap'd segments + a write-ahead log."""

    def __init__(
        self,
        corpus,
        path,
        manifest,
        wal,
        postings_mm,
        postings_name,
        stats_buffer,
        stats_name,
        sealed_count,
        mmaps,
    ):
        super().__init__(corpus)
        self._path = str(path)
        self._generation = manifest["generation"]
        self._wal = wal
        self._mmaps = list(mmaps)
        self._wal_documents = 0
        self._closed = False
        # Deferred (CRC-checked at open) segment payloads: the postings
        # directory and the statistics state decode on first touch of
        # :attr:`ir` / :attr:`statistics`, never on the cold-open path.
        self._postings_mm = postings_mm
        self._postings_name = postings_name
        self._stats_buffer = stats_buffer
        self._stats_name = stats_name
        self._sealed_count = sealed_count
        self._materialize_mutex = threading.Lock()
        # Serializes add_document/compact against each other.  Distinct
        # from the corpus RWLock: this one also covers the WAL file and
        # the name-before-encode step, which happen before (and must stay
        # ordered with) the corpus splice.
        self._ingest_mutex = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(cls, path):
        """Initialize an empty on-disk corpus at ``path`` and open it."""
        path = str(path)
        os.makedirs(path, exist_ok=True)
        if os.path.exists(os.path.join(path, diskfmt.MANIFEST_NAME)):
            raise FleXPathError("corpus already exists at %s" % path)
        corpus = Corpus()
        _write_segment(
            path,
            generation=1,
            store=corpus.document.store,
            fragments=corpus.fragments(),
            postings={},
            text_elements=0,
            stats_state=DocumentStatistics(
                corpus.document, virtual_root_id=0
            ).state(),
        )
        diskfmt.write_manifest(
            path,
            {
                "format": diskfmt.FORMAT_VERSION,
                "generation": 1,
                "segment": _segment_name(1),
                "version": 0,
            },
        )
        wal = diskfmt.WriteAheadLog(os.path.join(path, WAL_NAME), 1)
        wal.reset(1)
        return cls.open(path)

    @classmethod
    def open(cls, path):
        """Open an on-disk corpus: mmap segments, replay the WAL tail.

        No XML is parsed and no index or statistics pass runs — the cost
        is one manifest read, three mmaps, one memcpy per structural
        column, and one decode per surviving WAL record.
        """
        path = str(path)
        manifest = diskfmt.read_manifest(path)
        segment_dir = os.path.join(path, manifest["segment"])
        store, fragments, columns_mm = diskfmt.read_columns(
            os.path.join(segment_dir, "columns.bin")
        )
        mmaps = [columns_mm]
        try:
            postings_path = os.path.join(segment_dir, "postings.bin")
            stats_path = os.path.join(segment_dir, "stats.bin")
            # Envelope (magic + CRC) checks run now so a torn or flipped
            # segment fails the open; the Python-level decodes are
            # deferred to first full-text / statistics touch.
            postings_mm = diskfmt.map_postings(postings_path)
            mmaps.append(postings_mm)
            stats_buffer = diskfmt.load_stats(stats_path)
        except CorruptStorageError:
            for mm in mmaps:
                mm.close()
            raise
        document = Document(store)
        corpus = Corpus.adopt(document, fragments, version=manifest["version"])
        backend = cls(
            corpus,
            path,
            manifest,
            diskfmt.WriteAheadLog(
                os.path.join(path, WAL_NAME), manifest["generation"]
            ),
            postings_mm=postings_mm,
            postings_name=postings_path,
            stats_buffer=stats_buffer,
            stats_name=stats_path,
            sealed_count=len(document),
            mmaps=mmaps,
        )
        backend._replay_wal(manifest["generation"])
        return backend

    def _replay_wal(self, generation):
        """Re-apply the surviving WAL records through the normal splice path.

        Each record replays via ``corpus.add_document`` — the same code
        path live ingest takes — so the growth cascade extends the index
        and statistics incrementally and the corpus version lands at
        ``manifest version + records``, exactly where it was before the
        restart.
        """
        for payload in self._wal.recover(generation):
            try:
                document, name = diskfmt.decode_fragment(
                    payload, name=self._wal.path
                )
            except CorruptStorageError:
                raise
            except Exception as error:
                raise CorruptStorageError(
                    "corrupt %s: undecodable record (%s)"
                    % (self._wal.path, error)
                ) from None
            self.corpus.add_document(document, name=name)
            self._wal_documents += 1
        if REGISTRY.enabled:
            REGISTRY.set_gauge("disk.generation", self._generation)
            REGISTRY.set_gauge("disk.wal_documents", self._wal_documents)

    def close(self):
        """Release the WAL handle and segment mappings.

        The backend must not be used afterwards: lazy text and posting
        reads go straight to the mappings being closed here.
        """
        if self._closed:
            return
        self._closed = True
        self._wal.close()
        for mm in self._mmaps:
            try:
                mm.close()
            except BufferError:
                pass  # a live memoryview pins the map; the OS reclaims on exit

    # -- lazy hydration of the sealed segment payloads -------------------------

    @property
    def ir(self):
        """The full-text engine, hydrated from the sealed postings segment.

        First touch parses the term directory, wires a
        :class:`DiskInvertedIndex` over the mapping, and indexes whatever
        WAL-tail nodes were spliced before the touch.  Callers hold the
        corpus read (or write) lock here, so the document cannot grow
        mid-build; later growth extends the built index via the normal
        cascade.
        """
        if self._ir is None:
            with self._materialize_mutex:
                if self._ir is None:
                    started = perf_counter()
                    directory, text_elements = (
                        diskfmt.parse_postings_directory(
                            self._postings_mm, self._postings_name
                        )
                    )
                    index = DiskInvertedIndex(
                        self._document,
                        self._postings_mm,
                        directory,
                        text_elements,
                        sealed_upto=self._sealed_count,
                        name=self._postings_name,
                    )
                    if len(self._document) > self._sealed_count:
                        index.extend(self._sealed_count, len(self._document))
                    self._ir = IREngine(
                        self._document, index=index, virtual_root_id=0
                    )
                    self._observe_hydration(
                        "postings_directory", started, terms=len(directory)
                    )
        return self._ir

    @property
    def statistics(self):
        """Penalty statistics, hydrated from the sealed stats segment.

        First touch decodes the sealed snapshot and folds in any WAL-tail
        nodes spliced before the touch (same locking argument as
        :attr:`ir`).
        """
        if self._statistics is None:
            with self._materialize_mutex:
                if self._statistics is None:
                    started = perf_counter()
                    state = diskfmt.parse_stats(
                        self._stats_buffer, self._stats_name
                    )
                    statistics = DocumentStatistics.from_state(
                        self._document, state, virtual_root_id=0
                    )
                    if len(self._document) > state["counted_upto"]:
                        statistics.extend(
                            state["counted_upto"], len(self._document)
                        )
                    self._statistics = statistics
                    self._observe_hydration("statistics", started)
        return self._statistics

    def _observe_hydration(self, kind, started, **extra):
        """Record one lazy sealed-payload materialization (counter + event)."""
        if not (REGISTRY.enabled or HUB.active):
            return
        seconds = perf_counter() - started
        if REGISTRY.enabled:
            REGISTRY.inc("disk.%s_hydrations" % kind)
            REGISTRY.observe("disk.%s_hydration_seconds" % kind, seconds)
        if HUB.active:
            payload = {"path": self._path, "kind": kind, "seconds": seconds}
            payload.update(extra)
            HUB.emit("hydration", payload)

    # -- ingest ----------------------------------------------------------------

    @property
    def path(self):
        return self._path

    @property
    def generation(self):
        """Sealed-segment generation currently backing this corpus."""
        return self._generation

    @property
    def wal_documents(self):
        """Documents living only in the WAL tail (folded by compact)."""
        return self._wal_documents

    def add_document(self, document, name=None):
        """Durably ingest a parsed document: WAL first, then splice.

        The record is CRC-framed and fsync'd before the corpus mutates, so
        every document a caller saw acknowledged survives a crash, and a
        crash mid-append leaves only a torn tail that recovery truncates.
        """
        if self._closed:
            raise FleXPathError("backend is closed")
        with self._ingest_mutex:
            if name is None:
                name = "doc%d" % len(self.corpus)
            self._wal.append(diskfmt.encode_fragment(document, name))
            root = self.corpus.add_document(document, name=name)
            self._wal_documents += 1
            if REGISTRY.enabled:
                REGISTRY.set_gauge("disk.wal_documents", self._wal_documents)
            return root

    def compact(self):
        """Fold the WAL tail into a sealed segment of the next generation.

        Writes the complete current corpus (columns, full postings map,
        statistics) as ``seg-<g+1>``, flips the manifest atomically, resets
        the WAL under the new generation number, and removes older segment
        directories.  The open backend keeps serving throughout: its
        mappings stay valid after the unlink (POSIX), and queries only
        need the corpus read lock this method takes.

        Crash safety is the generation fence: until the manifest flip the
        old segment + old WAL reproduce everything; after the flip a stale
        WAL header's generation no longer matches and recovery discards
        its (already folded) records.
        """
        if self._closed:
            raise FleXPathError("backend is closed")
        with self._ingest_mutex:
            started = perf_counter()
            folded = self._wal_documents
            with self.lock.read_locked():
                new_generation = self._generation + 1
                _write_segment(
                    self._path,
                    generation=new_generation,
                    store=self.document.store,
                    fragments=self.corpus.fragments(),
                    postings=self.ir.index.materialize_all()
                    if isinstance(self.ir.index, DiskInvertedIndex)
                    else dict(self.ir.index._postings),
                    text_elements=self.ir.index.text_element_count,
                    stats_state=self.statistics.state(),
                )
                diskfmt.write_manifest(
                    self._path,
                    {
                        "format": diskfmt.FORMAT_VERSION,
                        "generation": new_generation,
                        "segment": _segment_name(new_generation),
                        "version": self.version,
                    },
                )
            self._wal.reset(new_generation)
            old_generation = self._generation
            self._generation = new_generation
            self._wal_documents = 0
            for generation in range(1, old_generation + 1):
                stale = os.path.join(self._path, _segment_name(generation))
                shutil.rmtree(stale, ignore_errors=True)
            if REGISTRY.enabled or HUB.active:
                seconds = perf_counter() - started
                if REGISTRY.enabled:
                    REGISTRY.inc_many(
                        {"compaction.count": 1, "compaction.documents_folded": folded}
                    )
                    REGISTRY.observe("compaction.seconds", seconds)
                    REGISTRY.set_gauge("disk.generation", new_generation)
                    REGISTRY.set_gauge("disk.wal_documents", 0)
                if HUB.active:
                    HUB.emit(
                        "compaction",
                        {
                            "path": self._path,
                            "generation": new_generation,
                            "documents_folded": folded,
                            "seconds": seconds,
                        },
                    )
            return new_generation

    def describe(self):
        info = super().describe()
        info.update(
            {
                "path": self._path,
                "generation": self._generation,
                "wal_documents": self._wal_documents,
                "documents": len(self.corpus),
            }
        )
        return info


def _write_segment(
    path, generation, store, fragments, postings, text_elements, stats_state
):
    """Seal one corpus snapshot as ``seg-<generation>`` (atomic via rename)."""
    final_dir = os.path.join(str(path), _segment_name(generation))
    tmp_dir = final_dir + ".tmp"
    if os.path.exists(tmp_dir):
        shutil.rmtree(tmp_dir)
    os.makedirs(tmp_dir)
    diskfmt.write_columns(os.path.join(tmp_dir, "columns.bin"), store, fragments)
    diskfmt.write_postings(
        os.path.join(tmp_dir, "postings.bin"), postings, text_elements
    )
    diskfmt.write_stats(os.path.join(tmp_dir, "stats.bin"), stats_state)
    if os.path.exists(final_dir):
        shutil.rmtree(final_dir)
    os.rename(tmp_dir, final_dir)
    diskfmt.fsync_directory(path)
    return final_dir
