"""FleXPath: flexible structure and full-text querying for XML.

A from-scratch reproduction of Amer-Yahia, Lakshmanan & Pandit,
"FleXPath: Flexible Structure and Full-Text Querying for XML",
SIGMOD 2004.

Quick start::

    from repro import FleXPath

    engine = FleXPath.from_xml(open("corpus.xml").read())
    result = engine.query(
        '//article[./section[./paragraph and .contains("XML" and "streaming")]]',
        k=10, scheme="structure-first", algorithm="hybrid",
    )
    for answer in result.answers:
        print(answer.node_id, answer.score)
"""

from repro.backend import InMemoryBackend, StorageBackend, as_backend
from repro.backend.disk import DiskBackend
from repro.backend.sharded import (
    HashRouter,
    RoundRobinRouter,
    ShardRouter,
    ShardedBackend,
)
from repro.cache import ResultCache
from repro.collection import Corpus, DocumentCollection
from repro.compiled import CompiledQuery, PlanCache, compile_query
from repro.concurrency import RWLock
from repro.engine import Engine, FleXPath
from repro.plans.eval_cache import EvaluationCache
from repro.errors import (
    CorruptStorageError,
    EvaluationError,
    FleXPathError,
    FTExprParseError,
    InvalidQueryError,
    InvalidRelaxationError,
    QueryBatchError,
    QueryCancelledError,
    QueryParseError,
    QueryTimeoutError,
    XMLParseError,
)
from repro.session import QueryControl, Session, SessionPool
from repro.ir import IREngine, parse_ftexpr
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    QueryTrace,
    SlowQueryLog,
    Tracer,
    disable_slow_query_log,
    enable_slow_query_log,
    get_registry,
)
from repro.query import TPQ, parse_query
from repro.rank import (
    COMBINED,
    KEYWORD_FIRST,
    STRUCTURE_FIRST,
    AnswerScore,
    ScoredAnswer,
)
from repro.relax import PenaltyModel, RelaxationSchedule, WeightAssignment
from repro.topk import (
    DPO,
    SSO,
    ExecutionSession,
    Hybrid,
    IRFirstDPO,
    NaiveRewriting,
    QueryContext,
    TopKResult,
)
from repro.xmltree import Document, build_document, element, parse, parse_file

__version__ = "1.0.0"

__all__ = [
    "AnswerScore",
    "COMBINED",
    "CompiledQuery",
    "Corpus",
    "CorruptStorageError",
    "DPO",
    "DiskBackend",
    "Document",
    "DocumentCollection",
    "Engine",
    "EvaluationCache",
    "EvaluationError",
    "ExecutionSession",
    "FTExprParseError",
    "FleXPath",
    "FleXPathError",
    "HashRouter",
    "Hybrid",
    "IREngine",
    "IRFirstDPO",
    "InMemoryBackend",
    "InvalidQueryError",
    "InvalidRelaxationError",
    "KEYWORD_FIRST",
    "MetricsRegistry",
    "NULL_TRACER",
    "NaiveRewriting",
    "PenaltyModel",
    "PlanCache",
    "QueryBatchError",
    "QueryCancelledError",
    "QueryContext",
    "QueryControl",
    "QueryParseError",
    "QueryTimeoutError",
    "QueryTrace",
    "RWLock",
    "ResultCache",
    "RelaxationSchedule",
    "RoundRobinRouter",
    "SSO",
    "STRUCTURE_FIRST",
    "ScoredAnswer",
    "Session",
    "SessionPool",
    "ShardRouter",
    "ShardedBackend",
    "SlowQueryLog",
    "StorageBackend",
    "TPQ",
    "TopKResult",
    "Tracer",
    "WeightAssignment",
    "XMLParseError",
    "as_backend",
    "build_document",
    "compile_query",
    "disable_slow_query_log",
    "element",
    "enable_slow_query_log",
    "get_registry",
    "parse",
    "parse_file",
    "parse_ftexpr",
    "parse_query",
    "__version__",
]
