"""Core (minimization) of tree pattern queries (§3.2, Theorem 1).

A predicate in (a subset of) a closure is *redundant* if it is derivable
from the remaining predicates via the inference rules. A set is *minimal*
if it has no redundant predicates. The **core** of a TPQ is the minimal set
equivalent to its closure; Theorem 1 states it is unique, which makes the
result of the straightforward remove-while-redundant loop well defined.

:func:`reconstruct_tpq` turns a minimal predicate set back into a
:class:`~repro.query.tpq.TPQ` when its structure forms a tree — the test
used by Definition 1 ("the core of C − S is a tree pattern query").
"""

from __future__ import annotations

from repro.errors import InvalidQueryError
from repro.query.closure import closure_set, derives
from repro.query.predicates import Ad, AttrCompare, Contains, Pc, Tag
from repro.query.tpq import AD, PC, TPQ


def minimize(predicates):
    """Return the unique minimal subset equivalent to ``predicates``.

    Predicates are visited in a deterministic order; by Theorem 1 the order
    does not change the result for sets drawn from TPQ closures.
    """
    remaining = set(predicates)
    for predicate in sorted(predicates, key=str):
        if predicate not in remaining:
            continue
        candidate = remaining - {predicate}
        if derives(candidate, predicate):
            remaining = candidate
    return frozenset(remaining)


class NotATreePattern(InvalidQueryError):
    """The predicate set does not describe a single tree pattern query."""


def reconstruct_tpq(predicates, distinguished):
    """Rebuild a TPQ from a *minimal* predicate set.

    Raises :class:`NotATreePattern` when the structural predicates do not
    form a single rooted tree, when a variable has two incoming edges, or
    when the distinguished variable is absent.
    """
    variables = set()
    incoming = {}
    tags = {}
    contains = []
    attrs = []

    for predicate in predicates:
        if isinstance(predicate, Pc):
            variables.update(predicate.variables())
            if predicate.child in incoming:
                raise NotATreePattern(
                    "variable %s has two incoming edges" % predicate.child
                )
            incoming[predicate.child] = (predicate.parent, PC)
        elif isinstance(predicate, Ad):
            variables.update(predicate.variables())
            if predicate.descendant in incoming:
                raise NotATreePattern(
                    "variable %s has two incoming edges" % predicate.descendant
                )
            incoming[predicate.descendant] = (predicate.ancestor, AD)
        elif isinstance(predicate, Tag):
            variables.add(predicate.var)
            tags[predicate.var] = predicate.name
        elif isinstance(predicate, Contains):
            variables.add(predicate.var)
            contains.append(predicate)
        elif isinstance(predicate, AttrCompare):
            variables.add(predicate.var)
            attrs.append(predicate)
        else:
            raise NotATreePattern("unknown predicate %r" % (predicate,))

    if not variables:
        # A single unconstrained variable has an empty predicate set; the
        # distinguished variable is the whole pattern.
        variables = {distinguished}
    roots = sorted(variables - set(incoming))
    if len(roots) != 1:
        raise NotATreePattern(
            "pattern graph has %d roots (%s); expected exactly one"
            % (len(roots), ", ".join(roots) or "none")
        )
    if distinguished not in variables:
        raise NotATreePattern(
            "distinguished variable %s was dropped" % distinguished
        )
    # TPQ.__init__ validates acyclicity / connectivity.
    return TPQ(roots[0], incoming, tags, distinguished, contains=contains,
               attr_predicates=attrs)


def core(tpq):
    """Return the core of a TPQ — the unique minimal equivalent TPQ."""
    minimal = minimize(closure_set(tpq.logical_predicates()))
    return reconstruct_tpq(minimal, tpq.distinguished)


def core_of_set(predicates, distinguished):
    """Minimize a predicate set and rebuild it as a TPQ.

    This is the Definition 1 check: relaxing drops predicates from a closure
    and requires the core of the remainder to still be a tree pattern.
    """
    return reconstruct_tpq(minimize(closure_set(predicates)), distinguished)
