"""Closure of tree pattern queries (§3.2, Figure 3).

The inference rules are::

    pc($x, $y)                      ⊢  ad($x, $y)
    ad($x, $y), ad($y, $z)          ⊢  ad($x, $z)
    ad($x, $y), contains($y, E)     ⊢  contains($x, E)

The *closure* of a TPQ conjoins every predicate derivable by these rules to
its logical expression (Figure 4 shows the closure of Q1). The closure is
equivalent to the query and unique; relaxations are defined by dropping
predicates from it, never from the query itself (§3.3).

All functions here work on plain sets of predicates so they can be applied
both to whole queries and to the intermediate sets ``C − S`` that arise
while relaxing.
"""

from __future__ import annotations

from repro.query.predicates import Ad, Contains, Pc


def closure_set(predicates):
    """Return the closure of an arbitrary predicate set as a frozenset."""
    predicates = set(predicates)

    # ad successor graph: x -> {y : ad(x, y) or pc(x, y)}
    successors = {}
    for predicate in predicates:
        if isinstance(predicate, Pc):
            successors.setdefault(predicate.parent, set()).add(predicate.child)
        elif isinstance(predicate, Ad):
            successors.setdefault(predicate.ancestor, set()).add(predicate.descendant)

    # Transitive closure by DFS from each source.
    reachable = {}
    for source in successors:
        seen = set()
        stack = list(successors[source])
        while stack:
            var = stack.pop()
            if var in seen:
                continue
            seen.add(var)
            stack.extend(successors.get(var, ()))
        reachable[source] = seen

    closed = set(predicates)
    for source, targets in reachable.items():
        for target in targets:
            closed.add(Ad(source, target))

    # Propagate contains to every ancestor (rule 3).
    for predicate in list(closed):
        if isinstance(predicate, Contains):
            for source, targets in reachable.items():
                if predicate.var in targets:
                    closed.add(Contains(source, predicate.ftexpr))

    return frozenset(closed)


def closure(tpq):
    """Return the closure of a TPQ's logical expression."""
    return closure_set(tpq.logical_predicates())


def derives(predicates, predicate):
    """Return True if ``predicate`` is derivable from ``predicates``."""
    return predicate in closure_set(predicates)


def is_redundant(predicate, predicates):
    """Return True if ``predicate`` follows from the *other* predicates.

    ``predicates`` must contain ``predicate``.
    """
    remaining = set(predicates)
    remaining.discard(predicate)
    return derives(remaining, predicate)


def equivalent_sets(first, second):
    """Return True if two predicate sets have the same closure."""
    return closure_set(first) == closure_set(second)
