"""Reference evaluator for TPQs — exact match semantics of §2.1.

This is the *specification* evaluator: a direct implementation of the match
definition (a function from pattern variables to data nodes preserving all
predicates). It is exponential in pattern size in the worst case and exists
to serve as ground truth for the join-plan engine, the relaxation operators
(containment soundness), and the top-K algorithms in tests. Production
evaluation goes through :mod:`repro.plans`.
"""

from __future__ import annotations

from repro.ir.matching import ftexpr_matches
from repro.ir.tokenizer import tokenize_and_stem


def default_contains_oracle(document):
    """Return a ``(node, ftexpr) -> bool`` oracle that scans subtree text.

    Results are memoized per (node id, expression).
    """
    cache = {}

    def oracle(node, ftexpr):
        key = (node.node_id, ftexpr)
        if key not in cache:
            tokens = tokenize_and_stem(document.full_text(node))
            cache[key] = ftexpr_matches(ftexpr, tokens)
        return cache[key]

    return oracle


def find_matches(query, document, contains_oracle=None, tag_matcher=None):
    """Yield complete matches as ``{variable: XMLNode}`` dicts.

    ``tag_matcher`` is an optional ``(query_tag, node_tag) -> bool``
    predicate enabling subtype semantics (the §3.4 type-hierarchy
    extension); the default is exact tag equality.
    """
    if contains_oracle is None:
        contains_oracle = default_contains_oracle(document)

    order = list(query.variables)

    def tag_ok(query_tag, node_tag):
        if tag_matcher is not None:
            return tag_matcher(query_tag, node_tag)
        return query_tag == node_tag

    def node_satisfies_unary(var, node):
        tag = query.tag_of(var)
        if tag is not None and not tag_ok(tag, node.tag):
            return False
        for predicate in query.attr_predicates:
            if predicate.var == var and not predicate.evaluate(
                node.attributes.get(predicate.attr)
            ):
                return False
        for predicate in query.contains_on(var):
            if not contains_oracle(node, predicate.ftexpr):
                return False
        return True

    candidates = {}
    for var in order:
        tag = query.tag_of(var)
        if tag is not None and tag_matcher is None:
            pool = document.nodes_with_tag(tag)
        else:
            pool = list(document.nodes())
        pool = [node for node in pool if node_satisfies_unary(var, node)]
        if not pool:
            return
        candidates[var] = pool

    assignment = {}

    def edge_ok(var, node):
        parent_var = query.parent_of(var)
        if parent_var is None:
            return True
        parent_node = assignment[parent_var]
        if query.axis_of(var) == "pc":
            return parent_node.is_parent_of(node)
        return parent_node.is_ancestor_of(node)

    def search(index):
        if index == len(order):
            yield dict(assignment)
            return
        var = order[index]
        parent_var = query.parent_of(var)
        if parent_var is not None:
            parent_node = assignment[parent_var]
            pool = (
                node
                for node in candidates[var]
                if parent_node.start < node.start and node.end <= parent_node.end
            )
        else:
            pool = candidates[var]
        for node in pool:
            if not edge_ok(var, node):
                continue
            assignment[var] = node
            yield from search(index + 1)
            del assignment[var]

    yield from search(0)


def evaluate(query, document, contains_oracle=None, tag_matcher=None):
    """Return the answer set: data nodes matched by the distinguished variable.

    Matches §2.1: ``Q(D) = {x | ∃ match f with f($d) = x}``; the result is a
    list of distinct nodes in document order.
    """
    seen = set()
    answers = []
    for match in find_matches(
        query, document, contains_oracle=contains_oracle, tag_matcher=tag_matcher
    ):
        node = match[query.distinguished]
        if node.node_id not in seen:
            seen.add(node.node_id)
            answers.append(node)
    answers.sort(key=lambda node: node.node_id)
    return answers
