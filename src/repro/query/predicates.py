"""Predicates making up the logical expression of a tree pattern query.

Section 2.1 of the paper views a TPQ ``(T, F)`` as the conjunction of

- *structural predicates* ``pc($i, $j)`` / ``ad($i, $j)`` encoded by the
  edges of ``T``, and
- *value-based predicates* from ``F``: tag constraints ``$i.tag = t``,
  attribute comparisons ``$i.attr relOp value``, and full-text predicates
  ``contains($i, FTExp)``.

All predicate classes here are immutable and hashable so that closures,
relaxations, and satisfied-predicate sets can be modelled as plain Python
sets — the representation the ranking theorems (Thm 3) are stated over.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

_REL_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Pc:
    """Parent-child structural predicate ``pc(parent, child)``."""

    parent: str
    child: str

    def variables(self):
        return (self.parent, self.child)

    def __str__(self):
        return "pc(%s, %s)" % (self.parent, self.child)


@dataclass(frozen=True)
class Ad:
    """Ancestor-descendant structural predicate ``ad(ancestor, descendant)``."""

    ancestor: str
    descendant: str

    def variables(self):
        return (self.ancestor, self.descendant)

    def __str__(self):
        return "ad(%s, %s)" % (self.ancestor, self.descendant)


@dataclass(frozen=True)
class Tag:
    """Tag constraint ``var.tag = name``."""

    var: str
    name: str

    def variables(self):
        return (self.var,)

    def __str__(self):
        return "%s.tag = %s" % (self.var, self.name)


@dataclass(frozen=True)
class AttrCompare:
    """Attribute comparison ``var.attr relOp value``.

    ``value`` is compared as a number when both sides parse as floats,
    otherwise as a string.
    """

    var: str
    attr: str
    rel_op: str
    value: str

    def __post_init__(self):
        if self.rel_op not in _REL_OPS:
            raise ValueError("unknown relational operator %r" % self.rel_op)

    def variables(self):
        return (self.var,)

    def evaluate(self, actual):
        """Apply the comparison to an actual attribute value (or None)."""
        if actual is None:
            return False
        compare = _REL_OPS[self.rel_op]
        try:
            return compare(float(actual), float(self.value))
        except (TypeError, ValueError):
            return compare(str(actual), str(self.value))

    def __str__(self):
        return "%s.%s %s %s" % (self.var, self.attr, self.rel_op, self.value)


@dataclass(frozen=True)
class Contains:
    """Full-text predicate ``contains(var, FTExp)``.

    ``ftexpr`` is a parsed :class:`repro.ir.ftexpr.FTExpr`; it is immutable
    and hashable, so ``Contains`` values can live in predicate sets.
    """

    var: str
    ftexpr: object

    def variables(self):
        return (self.var,)

    def __str__(self):
        return "contains(%s, %s)" % (self.var, self.ftexpr)


STRUCTURAL_TYPES = (Pc, Ad)
VALUE_TYPES = (Tag, AttrCompare, Contains)


def is_structural(predicate):
    """Return True for ``pc`` / ``ad`` predicates."""
    return isinstance(predicate, STRUCTURAL_TYPES)


def predicates_on(predicates, var):
    """Return the subset of ``predicates`` mentioning ``var``."""
    return {p for p in predicates if var in p.variables()}
