"""Tree pattern queries (TPQs) — the XPath fragment of §2.1.

A TPQ is a rooted tree whose nodes are variables (``$1``, ``$2``, ...),
whose edges are parent-child (``pc``) or ancestor-descendant (``ad``), plus
a Boolean conjunction of value-based predicates (tag constraints, attribute
comparisons, ``contains``). One variable is *distinguished*: matches to it
are the query answers.

Instances are immutable; the relaxation operators in :mod:`repro.relax`
produce new TPQs via the ``replacing_*`` / ``without_*`` copy methods here.
"""

from __future__ import annotations

from repro.errors import InvalidQueryError
from repro.query.predicates import Ad, AttrCompare, Contains, Pc, Tag

PC = "pc"
AD = "ad"
_AXES = (PC, AD)


class TPQ:
    """An immutable tree pattern query.

    Args:
        root: the root variable.
        edges: mapping ``child_var -> (parent_var, axis)`` with axis ``"pc"``
            or ``"ad"``; every variable except the root must appear as a key.
        tags: mapping ``var -> tag name`` (a variable may be unconstrained).
        distinguished: the answer variable.
        contains: iterable of :class:`~repro.query.predicates.Contains`.
        attr_predicates: iterable of
            :class:`~repro.query.predicates.AttrCompare`.
    """

    __slots__ = (
        "root",
        "distinguished",
        "_parent",
        "_axis",
        "_children",
        "_tags",
        "contains",
        "attr_predicates",
        "_variables",
    )

    def __init__(self, root, edges, tags, distinguished, contains=(), attr_predicates=()):
        parent = {}
        axis = {}
        children = {root: []}
        for child, (parent_var, edge_axis) in edges.items():
            if edge_axis not in _AXES:
                raise InvalidQueryError("unknown axis %r" % edge_axis)
            if child == root:
                raise InvalidQueryError("root variable %s cannot have a parent" % root)
            parent[child] = parent_var
            axis[child] = edge_axis
            children.setdefault(child, [])
            children.setdefault(parent_var, []).append(child)

        self.root = root
        self.distinguished = distinguished
        self._parent = parent
        self._axis = axis
        self._children = {var: tuple(kids) for var, kids in children.items()}
        self._tags = dict(tags)
        self.contains = tuple(contains)
        self.attr_predicates = tuple(attr_predicates)
        self._variables = self._validate()

    # -- validation ----------------------------------------------------------

    def _validate(self):
        reachable = []
        stack = [self.root]
        seen = set()
        while stack:
            var = stack.pop()
            if var in seen:
                raise InvalidQueryError("pattern graph has a cycle at %s" % var)
            seen.add(var)
            reachable.append(var)
            stack.extend(reversed(self._children.get(var, ())))
        declared = set(self._children)
        if seen != declared:
            orphans = sorted(declared - seen)
            raise InvalidQueryError(
                "pattern graph is not a tree; unreachable variables: %s"
                % ", ".join(orphans)
            )
        if self.distinguished not in seen:
            raise InvalidQueryError(
                "distinguished node %s is not in the pattern" % self.distinguished
            )
        for var in self._tags:
            if var not in seen:
                raise InvalidQueryError("tag constraint on unknown variable %s" % var)
        for predicate in self.contains:
            if not isinstance(predicate, Contains):
                raise InvalidQueryError("contains must be Contains predicates")
            if predicate.var not in seen:
                raise InvalidQueryError(
                    "contains predicate on unknown variable %s" % predicate.var
                )
        for predicate in self.attr_predicates:
            if not isinstance(predicate, AttrCompare):
                raise InvalidQueryError("attr_predicates must be AttrCompare")
            if predicate.var not in seen:
                raise InvalidQueryError(
                    "attribute predicate on unknown variable %s" % predicate.var
                )
        return tuple(reachable)

    # -- structure accessors ---------------------------------------------------

    @property
    def variables(self):
        """All variables in pre-order."""
        return self._variables

    def parent_of(self, var):
        """Return the parent variable, or None for the root."""
        return self._parent.get(var)

    def axis_of(self, var):
        """Return the axis ("pc"/"ad") of the edge into ``var``."""
        if var == self.root:
            raise InvalidQueryError("the root %s has no incoming edge" % var)
        return self._axis[var]

    def children_of(self, var):
        """Return the tuple of child variables."""
        return self._children.get(var, ())

    def tag_of(self, var):
        """Return the tag constraint on ``var``, or None."""
        return self._tags.get(var)

    def is_leaf(self, var):
        return not self._children.get(var)

    def leaves(self):
        """Return all leaf variables in pre-order."""
        return tuple(var for var in self._variables if self.is_leaf(var))

    def subtree_variables(self, var):
        """Return ``var`` and all its pattern descendants, in pre-order."""
        result = []
        stack = [var]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(reversed(self._children.get(current, ())))
        return tuple(result)

    def ancestors_of(self, var):
        """Yield proper pattern ancestors from parent up to the root."""
        current = self._parent.get(var)
        while current is not None:
            yield current
            current = self._parent.get(current)

    def edges(self):
        """Yield ``(parent, child, axis)`` triples in pre-order of the child."""
        for var in self._variables:
            if var != self.root:
                yield (self._parent[var], var, self._axis[var])

    def contains_on(self, var):
        """Return the contains predicates attached to ``var``."""
        return tuple(p for p in self.contains if p.var == var)

    def size(self):
        """Return the number of pattern variables."""
        return len(self._variables)

    # -- logical view ----------------------------------------------------------

    def structural_predicates(self):
        """Return the pc/ad predicates encoded by the edges."""
        predicates = set()
        for parent, child, axis in self.edges():
            if axis == PC:
                predicates.add(Pc(parent, child))
            else:
                predicates.add(Ad(parent, child))
        return predicates

    def value_predicates(self):
        """Return tag, attribute, and contains predicates as a set."""
        predicates = {Tag(var, tag) for var, tag in self._tags.items()}
        predicates.update(self.contains)
        predicates.update(self.attr_predicates)
        return predicates

    def logical_predicates(self):
        """Return the full logical expression of the query (Fig. 2)."""
        return self.structural_predicates() | self.value_predicates()

    # -- derivation (used by relaxation operators) -----------------------------

    def _edge_map(self):
        return {
            child: (self._parent[child], self._axis[child])
            for child in self._parent
        }

    def replacing_axis(self, var, axis):
        """Return a copy where the edge into ``var`` has the given axis."""
        edges = self._edge_map()
        parent, _ = edges[var]
        edges[var] = (parent, axis)
        return self._copy(edges=edges)

    def without_leaf(self, var):
        """Return a copy with leaf ``var`` and its predicates removed.

        If ``var`` is the distinguished node, its parent becomes
        distinguished (per the λ operator definition, §3.5.2).
        """
        if not self.is_leaf(var):
            raise InvalidQueryError("%s is not a leaf" % var)
        if var == self.root:
            raise InvalidQueryError("cannot delete the root")
        edges = self._edge_map()
        del edges[var]
        tags = {v: t for v, t in self._tags.items() if v != var}
        contains = tuple(p for p in self.contains if p.var != var)
        attr_predicates = tuple(p for p in self.attr_predicates if p.var != var)
        distinguished = self.distinguished
        if distinguished == var:
            distinguished = self._parent[var]
        return TPQ(
            self.root,
            edges,
            tags,
            distinguished,
            contains=contains,
            attr_predicates=attr_predicates,
        )

    def reparenting(self, var, new_parent, axis):
        """Return a copy where the subtree rooted at ``var`` hangs off
        ``new_parent`` with the given axis."""
        if var == self.root:
            raise InvalidQueryError("cannot re-parent the root")
        if new_parent in self.subtree_variables(var):
            raise InvalidQueryError(
                "cannot re-parent %s under its own subtree" % var
            )
        edges = self._edge_map()
        edges[var] = (new_parent, axis)
        return self._copy(edges=edges)

    def retargeting_contains(self, predicate, new_var):
        """Return a copy where ``predicate`` applies to ``new_var`` instead."""
        if predicate not in self.contains:
            raise InvalidQueryError("predicate %s is not in the query" % predicate)
        contains = tuple(
            Contains(new_var, p.ftexpr) if p == predicate else p
            for p in self.contains
        )
        return self._copy(contains=contains)

    def _copy(self, edges=None, tags=None, distinguished=None, contains=None,
              attr_predicates=None):
        return TPQ(
            self.root,
            self._edge_map() if edges is None else edges,
            self._tags if tags is None else tags,
            self.distinguished if distinguished is None else distinguished,
            contains=self.contains if contains is None else contains,
            attr_predicates=(
                self.attr_predicates if attr_predicates is None else attr_predicates
            ),
        )

    # -- identity ----------------------------------------------------------------

    def _key(self):
        return (
            self.root,
            self.distinguished,
            tuple(sorted(self._parent.items())),
            tuple(sorted(self._axis.items())),
            tuple(sorted(self._tags.items())),
            tuple(sorted(self.contains, key=str)),
            tuple(sorted(self.attr_predicates, key=str)),
        )

    def __eq__(self, other):
        if not isinstance(other, TPQ):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        return "TPQ(%s)" % self.to_xpath()

    # -- display -------------------------------------------------------------------

    def to_xpath(self):
        """Render the query back to the XPath-fragment concrete syntax."""

        def render(var, via_axis):
            step = "/" if via_axis == PC else "//"
            label = self._tags.get(var, "*")
            qualifiers = []
            for child in self.children_of(var):
                qualifiers.append(render(child, self._axis[child]))
            for predicate in self.contains_on(var):
                qualifiers.append(".contains(%s)" % predicate.ftexpr)
            for predicate in self.attr_predicates:
                if predicate.var == var:
                    qualifiers.append(
                        "@%s %s %s" % (predicate.attr, predicate.rel_op, predicate.value)
                    )
            text = step + label
            if var == self.distinguished:
                text += "{*}"
            if qualifiers:
                text += "[%s]" % " and ".join(
                    q if q.startswith(".") or q.startswith("@") else "." + q
                    for q in qualifiers
                )
            return text

        return render(self.root, AD)

    def pretty(self):
        """Return an indented multi-line rendering of the pattern tree."""
        lines = []

        def walk(var, depth):
            marker = "**" if var == self.distinguished else ""
            axis = "" if var == self.root else ("/" if self._axis[var] == PC else "//")
            tag = self._tags.get(var, "*")
            extra = "".join(
                " contains(%s)" % p.ftexpr for p in self.contains_on(var)
            )
            lines.append("%s%s%s (%s)%s%s" % ("  " * depth, axis, tag, var, marker, extra))
            for child in self.children_of(var):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)
