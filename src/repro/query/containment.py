"""Containment of tree pattern queries.

``Q ⊆ Q'`` means every answer of ``Q`` on every database is an answer of
``Q'`` (§2.1). Containment underlies the definition of relaxation ("a
relaxation of a query is any query which contains the former") and is what
the soundness half of Theorem 2 asserts for the operator outputs.

We decide containment with *containment mappings* (homomorphisms): a map
``h`` from the variables of ``Q'`` to the variables of ``Q`` such that

- ``h`` maps the distinguished variable of ``Q'`` to that of ``Q``,
- every predicate of ``Q'``, with variables renamed by ``h``, belongs to
  the **closure** of ``Q`` (pc maps to pc; ad may be witnessed by any
  derived ad; contains and tag predicates likewise).

Homomorphism existence is sound for containment in general and complete on
the relaxation lattices this library generates (which contain no wildcard
interactions of the kind behind the coNP-hardness of [24]); the test suite
exercises it against brute-force evaluation on sample documents.
"""

from __future__ import annotations

from repro.query.closure import closure
from repro.query.predicates import Ad, AttrCompare, Contains, Pc, Tag


def find_homomorphism(superset_query, subset_query):
    """Return a containment mapping ``h: vars(Q') -> vars(Q)`` or None.

    ``superset_query`` plays the role of ``Q'`` (the containing query) and
    ``subset_query`` the role of ``Q``.
    """
    target_closure = closure(subset_query)
    sub_vars = subset_query.variables
    sup_vars = superset_query.variables

    # Candidate targets per source variable, pruned by unary predicates.
    sup_tags = {var: superset_query.tag_of(var) for var in sup_vars}
    candidates = {}
    for var in sup_vars:
        tag = sup_tags[var]
        options = []
        for target in sub_vars:
            if tag is not None and Tag(target, tag) not in target_closure:
                continue
            options.append(target)
        if var == superset_query.distinguished:
            options = [
                t for t in options if t == subset_query.distinguished
            ]
        if not options:
            return None
        candidates[var] = options

    sup_predicates = _binary_predicates(superset_query)
    unary = _unary_predicates(superset_query)

    def consistent(assignment):
        for predicate in unary:
            mapped = _rename_unary(predicate, assignment)
            if mapped is not None and mapped not in target_closure:
                return False
        for predicate in sup_predicates:
            mapped = _rename_binary(predicate, assignment)
            if mapped is not None and mapped not in target_closure:
                return False
        return True

    # Backtracking search in pre-order (parents assigned before children,
    # so edge predicates prune early).
    order = list(sup_vars)
    assignment = {}

    def search(index):
        if index == len(order):
            return True
        var = order[index]
        for target in candidates[var]:
            assignment[var] = target
            if consistent(assignment) and search(index + 1):
                return True
            del assignment[var]
        return False

    if search(0):
        return dict(assignment)
    return None


def is_contained_in(subset_query, superset_query):
    """Return True if ``subset_query ⊆ superset_query``."""
    return find_homomorphism(superset_query, subset_query) is not None


def are_equivalent(first, second):
    """Return True if the two queries contain each other."""
    return is_contained_in(first, second) and is_contained_in(second, first)


def is_strictly_contained_in(subset_query, superset_query):
    """Return True if containment holds and the queries are not equivalent."""
    return is_contained_in(subset_query, superset_query) and not is_contained_in(
        superset_query, subset_query
    )


# -- helpers ------------------------------------------------------------------


def _binary_predicates(query):
    predicates = []
    for parent, child, axis in query.edges():
        if axis == "pc":
            predicates.append(Pc(parent, child))
        else:
            predicates.append(Ad(parent, child))
    return predicates


def _unary_predicates(query):
    predicates = []
    for var in query.variables:
        tag = query.tag_of(var)
        if tag is not None:
            predicates.append(Tag(var, tag))
    predicates.extend(query.contains)
    predicates.extend(query.attr_predicates)
    return predicates


def _rename_unary(predicate, assignment):
    var = predicate.variables()[0]
    if var not in assignment:
        return None
    target = assignment[var]
    if isinstance(predicate, Tag):
        return Tag(target, predicate.name)
    if isinstance(predicate, Contains):
        return Contains(target, predicate.ftexpr)
    if isinstance(predicate, AttrCompare):
        return AttrCompare(target, predicate.attr, predicate.rel_op, predicate.value)
    return None


def _rename_binary(predicate, assignment):
    first, second = predicate.variables()
    if first not in assignment or second not in assignment:
        return None
    if isinstance(predicate, Pc):
        return Pc(assignment[first], assignment[second])
    return Ad(assignment[first], assignment[second])
