"""Parser from the XPath fragment of the paper to :class:`TPQ`.

Supported syntax (the fragment used throughout the paper)::

    //article[.//algorithm and ./section[./paragraph
              and .contains("XML" and "streaming")]]
    //item[./description/parlist and ./mailbox/mail/text]
    //book[@price < 100]

- Steps use ``/`` (parent-child) or ``//`` (ancestor-descendant).
- Qualifiers in ``[...]`` are conjunctions of relative paths, ``.contains(FTExp)``
  (equivalently ``contains(., FTExp)``), and attribute comparisons.
- The *distinguished node* is the last step of the trunk path (the node the
  paper draws in a box).

Variables are assigned ``$1``, ``$2``, ... in the pre-order the parser
visits pattern nodes, matching the numbering used in the paper's figures.
"""

from __future__ import annotations

from repro.errors import QueryParseError
from repro.ir.ftexpr import parse_ftexpr
from repro.query.predicates import AttrCompare, Contains
from repro.query.tpq import AD, PC, TPQ

_REL_OPS = ("<=", ">=", "!=", "=", "<", ">")


def parse_query(text):
    """Parse an XPath-fragment string into a :class:`TPQ`."""
    return _QueryParser(text).parse()


class _PatternNode:
    """Mutable pattern node used during parsing."""

    __slots__ = ("tag", "axis", "children", "contains", "attrs")

    def __init__(self, tag, axis):
        self.tag = tag
        self.axis = axis
        self.children = []
        self.contains = []
        self.attrs = []


class _QueryParser:
    def __init__(self, text):
        self._text = text
        self._pos = 0
        self._length = len(text)

    # -- entry ----------------------------------------------------------------

    def parse(self):
        self._skip_ws()
        if self._pos >= self._length or self._text[self._pos] != "/":
            raise QueryParseError("query must start with '/' or '//'")
        trunk = self._parse_path()
        self._skip_ws()
        if self._pos != self._length:
            raise QueryParseError(
                "unexpected trailing input: %r" % self._text[self._pos:]
            )
        return self._to_tpq(trunk)

    def _to_tpq(self, trunk):
        edges = {}
        tags = {}
        contains = []
        attr_predicates = []
        counter = [0]

        def fresh_var():
            counter[0] += 1
            return "$%d" % counter[0]

        def emit(node, parent_var):
            var = fresh_var()
            if parent_var is not None:
                edges[var] = (parent_var, node.axis)
            if node.tag != "*":
                tags[var] = node.tag
            for raw in node.contains:
                contains.append(Contains(var, raw))
            for attr, rel_op, value in node.attrs:
                attr_predicates.append(AttrCompare(var, attr, rel_op, value))
            return var

        def walk(node, parent_var):
            var = emit(node, parent_var)
            for child in node.children:
                walk(child, var)

        # The trunk is a chain of steps; qualifiers branch off each step and
        # the distinguished variable is the one for the last trunk step.
        parent_var = None
        root_var = None
        last_var = None
        for node in trunk:
            var = emit(node, parent_var)
            if parent_var is None:
                root_var = var
            for child in node.children:
                walk(child, var)
            parent_var = var
            last_var = var

        return TPQ(
            root_var,
            edges,
            tags,
            distinguished=last_var,
            contains=contains,
            attr_predicates=attr_predicates,
        )

    # -- paths ------------------------------------------------------------------

    def _parse_path(self):
        """Parse a chain of steps; returns the list of _PatternNodes."""
        steps = []
        while True:
            self._skip_ws()
            if self._text.startswith("//", self._pos):
                axis = AD
                self._pos += 2
            elif self._text.startswith("/", self._pos):
                axis = PC
                self._pos += 1
            else:
                break
            tag = self._parse_name()
            node = _PatternNode(tag, axis)
            self._skip_ws()
            if self._text.startswith("[", self._pos):
                self._pos += 1
                self._parse_qualifiers(node)
            steps.append(node)
        if not steps:
            raise QueryParseError("expected a location step at offset %d" % self._pos)
        return steps

    def _parse_qualifiers(self, node):
        while True:
            self._skip_ws()
            self._parse_qualifier(node)
            self._skip_ws()
            if self._match_keyword("and"):
                continue
            if self._text.startswith("]", self._pos):
                self._pos += 1
                return
            raise QueryParseError(
                "expected 'and' or ']' at offset %d" % self._pos
            )

    def _parse_qualifier(self, node):
        self._skip_ws()
        if self._text.startswith("@", self._pos):
            self._parse_attr_comparison(node)
            return
        if self._text.startswith("contains", self._pos):
            self._parse_contains(node, dotted=False)
            return
        if self._text.startswith(".contains", self._pos):
            self._pos += 1
            self._parse_contains(node, dotted=True)
            return
        if self._text.startswith("./", self._pos):
            self._pos += 1
            steps = self._parse_path()
            self._attach_chain(node, steps)
            return
        if self._text.startswith(".//", self._pos):
            self._pos += 1
            steps = self._parse_path()
            self._attach_chain(node, steps)
            return
        if self._text.startswith("/", self._pos):
            steps = self._parse_path()
            self._attach_chain(node, steps)
            return
        raise QueryParseError("expected a qualifier at offset %d" % self._pos)

    @staticmethod
    def _attach_chain(node, steps):
        node.children.append(steps[0])
        for parent, child in zip(steps, steps[1:]):
            parent.children.append(child)

    def _parse_contains(self, node, dotted):
        # At this point the input starts with "contains".
        self._pos += len("contains")
        self._skip_ws()
        if not self._text.startswith("(", self._pos):
            raise QueryParseError("expected '(' after contains")
        self._pos += 1
        self._skip_ws()
        if not dotted:
            # contains(., FTExp) form: consume the context dot and comma.
            if self._text.startswith(".", self._pos):
                self._pos += 1
                self._skip_ws()
                if not self._text.startswith(",", self._pos):
                    raise QueryParseError("expected ',' in contains(., FTExp)")
                self._pos += 1
        raw = self._capture_balanced()
        node.contains.append(parse_ftexpr(raw))

    def _capture_balanced(self):
        """Capture text up to the matching ')' (quotes respected)."""
        depth = 1
        start = self._pos
        while self._pos < self._length:
            char = self._text[self._pos]
            if char in ("'", '"'):
                end = self._text.find(char, self._pos + 1)
                if end < 0:
                    raise QueryParseError("unterminated string in contains(...)")
                self._pos = end + 1
                continue
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    raw = self._text[start:self._pos]
                    self._pos += 1
                    return raw
            self._pos += 1
        raise QueryParseError("unterminated contains(...)")

    def _parse_attr_comparison(self, node):
        self._pos += 1  # consume '@'
        attr = self._parse_name()
        self._skip_ws()
        rel_op = None
        for candidate in _REL_OPS:
            if self._text.startswith(candidate, self._pos):
                rel_op = candidate
                self._pos += len(candidate)
                break
        if rel_op is None:
            raise QueryParseError("expected a comparison operator after @%s" % attr)
        self._skip_ws()
        value = self._parse_value()
        node.attrs.append((attr, rel_op, value))

    # -- lexical ------------------------------------------------------------------

    def _parse_name(self):
        self._skip_ws()
        if self._text.startswith("*", self._pos):
            self._pos += 1
            return "*"
        start = self._pos
        pos = start
        text = self._text
        while pos < self._length and (text[pos].isalnum() or text[pos] in "_-."):
            pos += 1
        if pos == start:
            raise QueryParseError("expected a tag name at offset %d" % start)
        self._pos = pos
        return text[start:pos]

    def _parse_value(self):
        char = self._text[self._pos:self._pos + 1]
        if char in ("'", '"'):
            end = self._text.find(char, self._pos + 1)
            if end < 0:
                raise QueryParseError("unterminated string value")
            value = self._text[self._pos + 1:end]
            self._pos = end + 1
            return value
        start = self._pos
        pos = start
        text = self._text
        while pos < self._length and (text[pos].isalnum() or text[pos] in "._-"):
            pos += 1
        if pos == start:
            raise QueryParseError("expected a value at offset %d" % start)
        self._pos = pos
        return text[start:pos]

    def _match_keyword(self, word):
        if self._text.startswith(word, self._pos):
            end = self._pos + len(word)
            if end >= self._length or not (self._text[end].isalnum() or self._text[end] == "_"):
                self._pos = end
                return True
        return False

    def _skip_ws(self):
        text = self._text
        pos = self._pos
        while pos < self._length and text[pos] in " \t\r\n":
            pos += 1
        self._pos = pos
