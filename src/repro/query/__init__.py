"""Tree pattern queries: model, parser, closure, core, containment."""

from repro.query.closure import (
    closure,
    closure_set,
    derives,
    equivalent_sets,
    is_redundant,
)
from repro.query.containment import (
    are_equivalent,
    find_homomorphism,
    is_contained_in,
    is_strictly_contained_in,
)
from repro.query.evaluate import evaluate, find_matches
from repro.query.minimize import (
    NotATreePattern,
    core,
    core_of_set,
    minimize,
    reconstruct_tpq,
)
from repro.query.parser import parse_query
from repro.query.predicates import Ad, AttrCompare, Contains, Pc, Tag, is_structural
from repro.query.tpq import AD, PC, TPQ

__all__ = [
    "AD",
    "Ad",
    "AttrCompare",
    "Contains",
    "NotATreePattern",
    "PC",
    "Pc",
    "TPQ",
    "Tag",
    "are_equivalent",
    "closure",
    "closure_set",
    "core",
    "core_of_set",
    "derives",
    "equivalent_sets",
    "evaluate",
    "find_homomorphism",
    "find_matches",
    "is_contained_in",
    "is_redundant",
    "is_strictly_contained_in",
    "is_structural",
    "minimize",
    "parse_query",
    "reconstruct_tpq",
]
