"""Enumeration of the space of relaxations (§3.5, Theorem 2).

Theorem 2 says finite compositions of the four operators generate exactly
the space of valid relaxations. :func:`enumerate_relaxations` materializes
that space by breadth-first application of every applicable operator,
deduplicating structurally identical queries. The space is finite (every
operator strictly decreases a bounded measure) but can be large, so a
``limit`` guard is available for defensive use.
"""

from __future__ import annotations

from collections import deque

from repro.errors import FleXPathError
from repro.query.tpq import PC
from repro.relax.operators import (
    axis_generalization,
    contains_promotion,
    leaf_deletion,
    subtree_promotion,
)


def applicable_relaxations(query):
    """Yield ``(operator_name, description, relaxed_query)`` for every
    single operator application valid on ``query``."""
    for parent, child, axis in query.edges():
        if axis == PC:
            yield (
                "axis-generalization",
                "γ on edge %s→%s" % (parent, child),
                axis_generalization(query, child),
            )
    for var in query.variables:
        if var == query.root:
            continue
        if query.is_leaf(var) and var != query.distinguished:
            # Deleting the distinguished leaf re-designates its parent and
            # changes the answer node type; the result does not contain the
            # original, so it is not a relaxation in the Definition 1 sense.
            yield ("leaf-deletion", "λ on %s" % var, leaf_deletion(query, var))
        parent = query.parent_of(var)
        if query.parent_of(parent) is not None:
            yield (
                "subtree-promotion",
                "σ on %s" % var,
                subtree_promotion(query, var),
            )
    for predicate in query.contains:
        if predicate.var != query.root:
            yield (
                "contains-promotion",
                "κ on %s" % (predicate,),
                contains_promotion(query, predicate),
            )


def enumerate_relaxations(query, limit=10000):
    """Return every distinct relaxation reachable from ``query``.

    The original query is not included. Raises :class:`FleXPathError` if
    the space exceeds ``limit`` (a sign the caller wants the lazy
    generator patterns of :mod:`repro.relax.steps` instead).
    """
    seen = {query}
    results = []
    frontier = deque([query])
    while frontier:
        current = frontier.popleft()
        for _name, _description, relaxed in applicable_relaxations(current):
            if relaxed in seen:
                continue
            seen.add(relaxed)
            results.append(relaxed)
            frontier.append(relaxed)
            if len(results) > limit:
                raise FleXPathError(
                    "relaxation space exceeds limit=%d" % limit
                )
    return results


def relaxation_distance(original, relaxed, limit=10000):
    """Return the minimum number of operator applications turning
    ``original`` into ``relaxed``, or None if unreachable."""
    if original == relaxed:
        return 0
    seen = {original}
    frontier = deque([(original, 0)])
    explored = 0
    while frontier:
        current, depth = frontier.popleft()
        for _name, _description, candidate in applicable_relaxations(current):
            if candidate == relaxed:
                return depth + 1
            if candidate in seen:
                continue
            seen.add(candidate)
            frontier.append((candidate, depth + 1))
            explored += 1
            if explored > limit:
                raise FleXPathError("search space exceeds limit=%d" % limit)
    return None
