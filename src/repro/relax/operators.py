"""The four relaxation operators of §3.5.

Theorem 2 states these are sound (every output strictly contains its input)
and complete (every valid relaxation is a finite composition of them):

- :func:`axis_generalization` (γ): pc edge → ad edge,
- :func:`leaf_deletion` (λ): remove a leaf and its value predicates,
- :func:`subtree_promotion` (σ): re-hang a subtree off the grandparent
  with an ad edge,
- :func:`contains_promotion` (κ): move a ``contains`` predicate from a node
  to its pattern parent.

Each function validates applicability and returns a new TPQ; inputs are
never mutated.
"""

from __future__ import annotations

from repro.errors import InvalidRelaxationError
from repro.query.tpq import AD, PC


def axis_generalization(query, var):
    """γ: replace the pc edge into ``var`` with an ad edge."""
    if var == query.root:
        raise InvalidRelaxationError("the root has no incoming edge to generalize")
    if query.axis_of(var) != PC:
        raise InvalidRelaxationError(
            "edge into %s is already ancestor-descendant" % var
        )
    return query.replacing_axis(var, AD)


def leaf_deletion(query, var):
    """λ: delete leaf ``var``; its value predicates are dropped.

    Deleting the root is forbidden (the result would match every element);
    if ``var`` is the distinguished node, its parent becomes distinguished.
    """
    if var == query.root:
        raise InvalidRelaxationError("deleting the root is not allowed")
    if not query.is_leaf(var):
        raise InvalidRelaxationError("%s is not a leaf" % var)
    return query.without_leaf(var)


def subtree_promotion(query, var):
    """σ: make the subtree rooted at ``var`` an ad child of its grandparent."""
    if var == query.root:
        raise InvalidRelaxationError("the root cannot be promoted")
    parent = query.parent_of(var)
    grandparent = query.parent_of(parent)
    if grandparent is None:
        raise InvalidRelaxationError("%s has no grandparent to promote to" % var)
    return query.reparenting(var, grandparent, AD)


def contains_promotion(query, predicate):
    """κ: move ``contains(var, E)`` from ``var`` to ``var``'s pattern parent."""
    if predicate not in query.contains:
        raise InvalidRelaxationError("predicate %s is not in the query" % predicate)
    parent = query.parent_of(predicate.var)
    if parent is None:
        raise InvalidRelaxationError(
            "contains on the root %s cannot be promoted" % predicate.var
        )
    return query.retargeting_contains(predicate, parent)
