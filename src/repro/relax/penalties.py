"""Predicate penalties (§4.3.1).

The penalty of dropping a closure predicate measures how much search context
the relaxation gives up, estimated from corpus statistics:

- drop ``pc(i, j)`` (keeping ``ad``):  ``#pc(ti,tj) / #ad(ti,tj) · w``
  — when almost all ancestor-descendant pairs are in fact parent-child,
  generalizing the axis admits few new answers, so it costs almost the
  full predicate weight;
- drop ``ad(i, j)``:  ``#ad(ti,tj) / (#(ti) · #(tj)) · w``;
- drop ``contains(i, E)`` (promoting it to the parent ``l``):
  ``#contains(i, E) / #contains(l, E) · w``.

Weights come from a :class:`WeightAssignment`; the paper's experiments use
uniform unit weights and assume weight 1 for ``contains``.
"""

from __future__ import annotations

from repro.query.predicates import Ad, Contains, Pc


class WeightAssignment:
    """Maps closure predicates to weights (``w_Q`` in the paper).

    The default is the uniform unit assignment. Custom weights can be given
    per predicate; lookups fall back to the default weight.
    """

    def __init__(self, default=1.0, overrides=None):
        self._default = float(default)
        self._overrides = dict(overrides or {})

    def weight(self, predicate):
        return self._overrides.get(predicate, self._default)

    def __call__(self, predicate):
        return self.weight(predicate)


UNIFORM_WEIGHTS = WeightAssignment()


class PenaltyModel:
    """Computes drop penalties for the predicates of one query's closure."""

    def __init__(self, statistics, ir_engine=None, weights=UNIFORM_WEIGHTS):
        self._stats = statistics
        self._ir = ir_engine
        self._weights = weights

    @property
    def weights(self):
        return self._weights

    @property
    def statistics(self):
        return self._stats

    def weight(self, predicate):
        return self._weights.weight(predicate)

    def pc_drop_penalty(self, query, predicate):
        """Penalty for relaxing ``pc(i, j)`` to ``ad(i, j)``."""
        parent_tag = query.tag_of(predicate.parent)
        child_tag = query.tag_of(predicate.child)
        weight = self._weights.weight(predicate)
        pc_pairs = self._stats.pc_count(parent_tag, child_tag)
        ad_pairs = self._stats.ad_count(parent_tag, child_tag)
        if ad_pairs == 0:
            return weight
        return (pc_pairs / ad_pairs) * weight

    def ad_drop_penalty(self, query, predicate):
        """Penalty for dropping ``ad(i, j)`` entirely."""
        ancestor_tag = query.tag_of(predicate.ancestor)
        descendant_tag = query.tag_of(predicate.descendant)
        weight = self._weights.weight(predicate)
        ad_pairs = self._stats.ad_count(ancestor_tag, descendant_tag)
        denominator = self._stats.tag_count(ancestor_tag) * self._stats.tag_count(
            descendant_tag
        )
        if denominator == 0:
            return weight
        return (ad_pairs / denominator) * weight

    def contains_drop_penalty(self, query, predicate):
        """Penalty for promoting ``contains(i, E)`` to ``i``'s parent ``l``."""
        weight = self._weights.weight(predicate)
        parent = query.parent_of(predicate.var)
        if parent is None or self._ir is None:
            return weight
        child_matches = self._ir.count_satisfying(
            predicate.ftexpr, query.tag_of(predicate.var)
        )
        parent_matches = self._ir.count_satisfying(
            predicate.ftexpr, query.tag_of(parent)
        )
        if parent_matches == 0:
            return weight
        return (child_matches / parent_matches) * weight

    def penalty(self, query, predicate):
        """Dispatch on predicate type."""
        if isinstance(predicate, Pc):
            return self.pc_drop_penalty(query, predicate)
        if isinstance(predicate, Ad):
            return self.ad_drop_penalty(query, predicate)
        if isinstance(predicate, Contains):
            return self.contains_drop_penalty(query, predicate)
        raise TypeError("no drop penalty for predicate %r" % (predicate,))
