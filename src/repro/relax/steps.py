"""Atomic relaxation steps and the penalty-ordered relaxation schedule.

The paper's algorithms reason about relaxation as *dropping one closure
predicate at a time*, each drop realized by an operator application
(§3.5: "we often refer to 'the next predicate dropped' ... even though the
algorithms are based on the operators"). This module makes that
correspondence executable:

- a :class:`RelaxationStep` pairs the closure predicate being dropped with
  the operator application that realizes the drop and the penalty it incurs;
- a :class:`RelaxationSchedule` greedily applies the cheapest valid step
  until none remain, yielding the sequence of relaxed queries
  ``Q = Q_0 ⊂ Q_1 ⊂ Q_2 ⊂ ...`` that DPO walks dynamically and SSO/Hybrid
  encode statically.

Valid single drops on the current query are:

- drop ``pc(p, v)`` where the edge into ``v`` is pc  → γ (edge becomes ad);
- drop ``ad(p, v)`` where the edge into ``v`` is ad:
    - ``p`` is not the root → σ (``v``'s subtree re-hangs off the
      grandparent),
    - ``p`` is the root and ``v`` is a leaf → λ (leaf deletion; value
      predicates on ``v`` drop automatically, a ``contains`` on ``v``
      contributes its promotion penalty since the closure retains it at
      ancestors);
- drop ``contains(v, E)`` with ``v`` not the root → κ (promotion to the
  parent).

Dropping ``ad(p, v)`` while ``pc(p, v)`` is still present would leave an
equivalent query (the predicate is derivable), and dropping the edge into a
non-leaf root child would disconnect the pattern — exactly the two pitfalls
Definition 1 excludes — so neither appears as a step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.predicates import Ad, Pc
from repro.query.tpq import PC
from repro.relax.operators import (
    axis_generalization,
    contains_promotion,
    leaf_deletion,
    subtree_promotion,
)

GAMMA = "axis-generalization"
LAMBDA = "leaf-deletion"
SIGMA = "subtree-promotion"
KAPPA = "contains-promotion"


@dataclass(frozen=True)
class RelaxationStep:
    """One predicate drop: the operator that realizes it and its penalty."""

    operator: str
    dropped: object  # the closure predicate being dropped
    target: str  # the variable (or contains var) the operator acts on
    penalty: float

    def apply(self, query):
        if self.operator == GAMMA:
            return axis_generalization(query, self.target)
        if self.operator == SIGMA:
            return subtree_promotion(query, self.target)
        if self.operator == LAMBDA:
            return leaf_deletion(query, self.target)
        if self.operator == KAPPA:
            predicate = next(
                p for p in query.contains
                if p.var == self.target and p.ftexpr == self.dropped.ftexpr
            )
            return contains_promotion(query, predicate)
        raise ValueError("unknown operator %r" % self.operator)

    def describe(self):
        return "%s dropping %s" % (self.operator, self.dropped)


def _deletable(query, var):
    """True if λ may delete ``var`` within a schedule.

    Three guards beyond "is a leaf":

    - a leaf still carrying a ``contains`` must have it promoted (κ) first —
      deletion would silently discard the full-text obligation, which §3.1
      rules out;
    - the distinguished variable is never deleted inside a schedule: λ's
      re-designation of the parent changes *what kind of node* is returned,
      so the result would not contain the original query's answers — the
      containment invariant every algorithm relies on.
    """
    return (
        query.is_leaf(var)
        and not query.contains_on(var)
        and var != query.distinguished
    )


def candidate_steps(query, penalty_model, skip_useless_gamma=True):
    """Enumerate the valid single drops on ``query`` with their penalties.

    With ``skip_useless_gamma`` (the default), γ steps whose tag pair has no
    ancestor-descendant pairs beyond the parent-child ones are omitted: on
    this document the relaxation cannot admit any new answer (this is how
    "edge generalization is enabled by recursive nodes in the DTD" — §6 —
    shows up in the statistics).
    """
    steps = []
    for parent, child, axis in query.edges():
        if axis == PC:
            predicate = Pc(parent, child)
            gamma_useful = True
            if skip_useless_gamma:
                parent_tag = query.tag_of(parent)
                child_tag = query.tag_of(child)
                ad_pairs = penalty_model.statistics.ad_count(parent_tag, child_tag)
                pc_pairs = penalty_model.statistics.pc_count(parent_tag, child_tag)
                gamma_useful = ad_pairs > pc_pairs
            if gamma_useful:
                steps.append(
                    RelaxationStep(
                        GAMMA,
                        predicate,
                        child,
                        penalty_model.pc_drop_penalty(query, predicate),
                    )
                )
            else:
                # γ adds nothing on this document (every ad pair is already
                # pc), but promotion / deletion may still pay off. Offer a
                # combined drop of both pc and ad in one step.
                ad_predicate = Ad(parent, child)
                combined = penalty_model.pc_drop_penalty(
                    query, predicate
                ) + penalty_model.ad_drop_penalty(query, ad_predicate)
                if parent != query.root:
                    steps.append(
                        RelaxationStep(SIGMA, ad_predicate, child, combined)
                    )
                elif _deletable(query, child):
                    steps.append(
                        RelaxationStep(LAMBDA, ad_predicate, child, combined)
                    )
        else:
            predicate = Ad(parent, child)
            if parent != query.root:
                steps.append(
                    RelaxationStep(
                        SIGMA,
                        predicate,
                        child,
                        penalty_model.ad_drop_penalty(query, predicate),
                    )
                )
            elif _deletable(query, child):
                penalty = penalty_model.ad_drop_penalty(query, predicate)
                steps.append(RelaxationStep(LAMBDA, predicate, child, penalty))
    for contains in query.contains:
        if contains.var != query.root:
            steps.append(
                RelaxationStep(
                    KAPPA,
                    contains,
                    contains.var,
                    penalty_model.contains_drop_penalty(query, contains),
                )
            )
    return steps


@dataclass(frozen=True)
class ScheduleEntry:
    """One level of the relaxation schedule."""

    index: int  # 0 = the original query
    query: object  # the TPQ at this level
    step: object  # the RelaxationStep that produced it (None at level 0)
    cumulative_penalty: float

    def structural_score(self, base_score):
        """Compile-time structural score of answers first seen at this level."""
        return base_score - self.cumulative_penalty


class RelaxationSchedule:
    """Penalty-ordered cumulative relaxation of one query.

    Level 0 is the original query; level ``i`` applies the cheapest valid
    step to level ``i-1``. The schedule is what DPO walks one level at a
    time and what SSO prefixes to encode into a single plan.
    """

    def __init__(self, query, penalty_model, max_steps=None,
                 skip_useless_gamma=True):
        self.query = query
        self.penalty_model = penalty_model
        self.base_score = sum(
            penalty_model.weight(p) for p in query.structural_predicates()
        )
        self.entries = [ScheduleEntry(0, query, None, 0.0)]
        current = query
        cumulative = 0.0
        while max_steps is None or len(self.entries) - 1 < max_steps:
            steps = candidate_steps(
                current, penalty_model, skip_useless_gamma=skip_useless_gamma
            )
            if not steps:
                break
            step = min(steps, key=lambda s: (s.penalty, str(s.dropped)))
            current = step.apply(current)
            cumulative += step.penalty
            self.entries.append(
                ScheduleEntry(len(self.entries), current, step, cumulative)
            )

    def __len__(self):
        """Number of relaxation levels beyond the original query."""
        return len(self.entries) - 1

    def __getstate__(self):
        # The penalty model holds the backend (and its thread lock), which
        # cannot cross a process boundary.  Everything the schedule serves
        # after construction — levels, cumulative penalties, base score —
        # is already materialized, so ship the schedule without it (the
        # sharded scatter path pickles CompiledQuery artifacts to workers).
        state = dict(self.__dict__)
        state["penalty_model"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def level(self, index):
        return self.entries[index]

    def queries(self):
        """The chain Q_0 ⊆ Q_1 ⊆ ... of relaxed queries."""
        return [entry.query for entry in self.entries]

    def structural_score(self, index):
        """Structural score of answers introduced at level ``index``."""
        return self.base_score - self.entries[index].cumulative_penalty

    def describe(self):
        lines = ["level 0: %s (score %.3f)" % (self.query.to_xpath(), self.base_score)]
        for entry in self.entries[1:]:
            lines.append(
                "level %d: %s  [%s, penalty %.3f, score %.3f]"
                % (
                    entry.index,
                    entry.query.to_xpath(),
                    entry.step.describe(),
                    entry.step.penalty,
                    self.structural_score(entry.index),
                )
            )
        return "\n".join(lines)
