"""The "other relaxations" of §3.4 — optional extensions.

The paper sets these aside as orthogonal to its structural/contains
relaxations but spells out what they are:

- **tag generalization** against a type hierarchy: replace
  ``$1.tag = article`` with ``$1.tag = publication`` when ``article`` is a
  subtype of ``publication``;
- **value-predicate weakening**: ``$i.price ≤ 98`` → ``$i.price ≤ 100``;
- **keyword relaxation** with a thesaurus: replace a keyword by the
  disjunction of its synonyms, or drop one conjunct of an ``and``.

All three are implemented here as operators producing new TPQs plus the
evaluation support they need (a hierarchy-aware tag matcher for the
reference evaluator). They compose with the core operators; penalties
follow the same "how much context is lost" recipe as §4.3.1.
"""

from __future__ import annotations

from repro.errors import InvalidRelaxationError
from repro.ir.ftexpr import And, Or, Term
from repro.query.predicates import AttrCompare, Contains
from repro.query.tpq import TPQ


class TypeHierarchy:
    """A forest of element types: each tag may have one supertype.

    Example::

        hierarchy = TypeHierarchy({"article": "publication",
                                   "book": "publication"})
        hierarchy.supertype("article")        # "publication"
        hierarchy.subtypes_of("publication")  # {"publication", "article", "book"}
    """

    def __init__(self, parent_of):
        self._parent = dict(parent_of)
        # Validate acyclicity.
        for tag in self._parent:
            seen = {tag}
            current = self._parent.get(tag)
            while current is not None:
                if current in seen:
                    raise InvalidRelaxationError(
                        "type hierarchy has a cycle through %r" % current
                    )
                seen.add(current)
                current = self._parent.get(current)

    def supertype(self, tag):
        """The immediate supertype, or None for a root type."""
        return self._parent.get(tag)

    def ancestors(self, tag):
        """All proper supertypes, nearest first."""
        result = []
        current = self._parent.get(tag)
        while current is not None:
            result.append(current)
            current = self._parent.get(current)
        return result

    def subtypes_of(self, tag):
        """The tag together with every (transitive) subtype."""
        result = {tag}
        changed = True
        while changed:
            changed = False
            for child, parent in self._parent.items():
                if parent in result and child not in result:
                    result.add(child)
                    changed = True
        return result

    def matches(self, query_tag, node_tag):
        """True if an element tagged ``node_tag`` satisfies ``query_tag``
        under subtype semantics."""
        if query_tag == node_tag:
            return True
        return query_tag in self.ancestors(node_tag)


def tag_generalization(query, var, hierarchy):
    """Replace ``var``'s tag constraint with its immediate supertype."""
    tag = query.tag_of(var)
    if tag is None:
        raise InvalidRelaxationError("%s has no tag constraint" % var)
    supertype = hierarchy.supertype(tag)
    if supertype is None:
        raise InvalidRelaxationError("%r has no supertype" % tag)
    tags = {
        v: (supertype if v == var else query.tag_of(v))
        for v in query.variables
        if query.tag_of(v) is not None
    }
    edges = {
        v: (query.parent_of(v), query.axis_of(v))
        for v in query.variables
        if v != query.root
    }
    return TPQ(
        query.root,
        edges,
        tags,
        query.distinguished,
        contains=query.contains,
        attr_predicates=query.attr_predicates,
    )


def hierarchy_tag_matcher(hierarchy):
    """A ``(query_tag, node_tag) -> bool`` matcher for the evaluator."""

    def matcher(query_tag, node_tag):
        return hierarchy.matches(query_tag, node_tag)

    return matcher


def weaken_value_predicate(query, predicate, new_value):
    """Weaken a numeric comparison: the new bound must admit a superset.

    ``<`` / ``<=`` bounds may only increase; ``>`` / ``>=`` bounds may only
    decrease; ``=`` and ``!=`` cannot be weakened this way.
    """
    if predicate not in query.attr_predicates:
        raise InvalidRelaxationError("predicate %s is not in the query" % predicate)
    try:
        old = float(predicate.value)
        new = float(new_value)
    except (TypeError, ValueError):
        raise InvalidRelaxationError(
            "value weakening needs numeric bounds"
        ) from None
    if predicate.rel_op in ("<", "<="):
        if new < old:
            raise InvalidRelaxationError("new bound must not shrink the range")
    elif predicate.rel_op in (">", ">="):
        if new > old:
            raise InvalidRelaxationError("new bound must not shrink the range")
    else:
        raise InvalidRelaxationError(
            "operator %r cannot be weakened" % predicate.rel_op
        )
    replaced = AttrCompare(
        predicate.var, predicate.attr, predicate.rel_op, str(new_value)
    )
    attr_predicates = tuple(
        replaced if p == predicate else p for p in query.attr_predicates
    )
    edges = {
        v: (query.parent_of(v), query.axis_of(v))
        for v in query.variables
        if v != query.root
    }
    tags = {
        v: query.tag_of(v)
        for v in query.variables
        if query.tag_of(v) is not None
    }
    return TPQ(
        query.root,
        edges,
        tags,
        query.distinguished,
        contains=query.contains,
        attr_predicates=attr_predicates,
    )


class Thesaurus:
    """Synonym table for keyword relaxation."""

    def __init__(self, synonyms):
        self._synonyms = {
            word: tuple(words) for word, words in synonyms.items()
        }

    def synonyms_of(self, word):
        return self._synonyms.get(word, ())


def expand_keyword(query, predicate, word, thesaurus):
    """Replace ``word`` in a contains predicate by (word or synonyms...)."""
    if predicate not in query.contains:
        raise InvalidRelaxationError("predicate %s is not in the query" % predicate)
    synonyms = thesaurus.synonyms_of(word)
    if not synonyms:
        raise InvalidRelaxationError("no synonyms known for %r" % word)

    def rewrite(expr):
        if isinstance(expr, Term):
            if expr.word == word:
                return Or((expr,) + tuple(Term(s) for s in synonyms))
            return expr
        children = getattr(expr, "children", None)
        if children is not None:
            rebuilt = tuple(rewrite(child) for child in children)
            return type(expr)(rebuilt)
        child = getattr(expr, "child", None)
        if child is not None:
            return type(expr)(rewrite(child))
        return expr

    new_expr = rewrite(predicate.ftexpr)
    if new_expr == predicate.ftexpr:
        raise InvalidRelaxationError("%r does not occur in %s" % (word, predicate))
    contains = tuple(
        Contains(p.var, new_expr) if p == predicate else p
        for p in query.contains
    )
    return query._copy(contains=contains)


def drop_keyword(query, predicate, word):
    """Drop one conjunct of an ``and`` expression (a §3.4 relaxation).

    Only allowed when the term sits directly under a top-level conjunction
    with at least two conjuncts — dropping the only keyword would make the
    predicate vacuous.
    """
    if predicate not in query.contains:
        raise InvalidRelaxationError("predicate %s is not in the query" % predicate)
    expr = predicate.ftexpr
    if not isinstance(expr, And):
        raise InvalidRelaxationError("only conjunctions support keyword drops")
    remaining = tuple(
        child
        for child in expr.children
        if not (isinstance(child, Term) and child.word == word)
    )
    if len(remaining) == len(expr.children):
        raise InvalidRelaxationError("%r is not a top-level conjunct" % word)
    if not remaining:
        raise InvalidRelaxationError("cannot drop the last keyword")
    new_expr = remaining[0] if len(remaining) == 1 else And(remaining)
    contains = tuple(
        Contains(p.var, new_expr) if p == predicate else p
        for p in query.contains
    )
    return query._copy(contains=contains)
