"""Query relaxation: operators, penalties, schedules, and the full space."""

from repro.relax.extensions import (
    Thesaurus,
    TypeHierarchy,
    drop_keyword,
    expand_keyword,
    hierarchy_tag_matcher,
    tag_generalization,
    weaken_value_predicate,
)
from repro.relax.operators import (
    axis_generalization,
    contains_promotion,
    leaf_deletion,
    subtree_promotion,
)
from repro.relax.penalties import UNIFORM_WEIGHTS, PenaltyModel, WeightAssignment
from repro.relax.space import (
    applicable_relaxations,
    enumerate_relaxations,
    relaxation_distance,
)
from repro.relax.steps import (
    GAMMA,
    KAPPA,
    LAMBDA,
    SIGMA,
    RelaxationSchedule,
    RelaxationStep,
    ScheduleEntry,
    candidate_steps,
)

__all__ = [
    "GAMMA",
    "KAPPA",
    "LAMBDA",
    "PenaltyModel",
    "Thesaurus",
    "TypeHierarchy",
    "drop_keyword",
    "expand_keyword",
    "hierarchy_tag_matcher",
    "tag_generalization",
    "weaken_value_predicate",
    "RelaxationSchedule",
    "RelaxationStep",
    "SIGMA",
    "ScheduleEntry",
    "UNIFORM_WEIGHTS",
    "WeightAssignment",
    "applicable_relaxations",
    "axis_generalization",
    "candidate_steps",
    "contains_promotion",
    "enumerate_relaxations",
    "leaf_deletion",
    "relaxation_distance",
    "subtree_promotion",
]
