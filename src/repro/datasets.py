"""Synthetic article corpus for the paper's §1 motivating scenario.

The introduction motivates FleXPath with bibliographic collections (IEEE
INEX, ACM SIGMOD Record): heterogeneous structure plus textual content.
This generator produces such a corpus deterministically, with exactly the
heterogeneity the Figure 1 discussion relies on:

- some articles keep the keywords in a paragraph of the section that also
  holds an algorithm (exact Q1 matches);
- some have the keywords in the *section title*, not in any paragraph
  (recovered by contains promotion — paper Q2);
- some have the algorithm outside the keyword-bearing section (recovered
  by subtree promotion — paper Q3);
- some mention the keywords only in an abstract (recovered by repeated
  relaxation — paper Q5/Q6 territory);
- plus articles about unrelated topics (never relevant).

Every article records its archetype in an ``id`` attribute so tests can
assert which relaxation level recovers which article.
"""

from __future__ import annotations

import random

from repro.collection import Corpus
from repro.xmltree.builder import TreeBuilder

TOPIC_SENTENCES = (
    "We present new techniques for query evaluation.",
    "The experimental results demonstrate clear improvements.",
    "Our approach builds on well known indexing structures.",
    "A careful analysis shows the trade offs involved.",
    "The implementation uses a standard buffer manager.",
    "Related approaches are discussed in a later section.",
)

OFF_TOPIC_SENTENCES = (
    "Relational engines optimize join ordering with dynamic programming.",
    "Lock managers coordinate concurrent transactions.",
    "Buffer replacement policies affect cache hit rates.",
    "Cost models estimate cardinalities from histograms.",
)

#: Archetype names in the order generated; see the module docstring.
ARCHETYPES = (
    "exact",           # paragraph in the algorithm section has the keywords
    "title-keywords",  # section title has them, no paragraph does
    "split-algorithm", # keywords in a section without the algorithm
    "abstract-only",   # keywords only in the abstract
    "off-topic",       # keywords absent
)


def article_corpus(articles=25, seed=11, keywords=("XML", "streaming")):
    """Build a corpus of ``articles`` articles cycling over the archetypes.

    Each article is built as a standalone document and spliced into a
    :class:`~repro.collection.Corpus` — the incremental-ingest path — which
    yields exactly the same pre-order node ids as building the whole
    ``<collection>`` tree with one builder.

    Returns a :class:`~repro.xmltree.document.Document` rooted at
    ``<collection>``.
    """
    rng = random.Random(seed)
    keyword_text = " ".join(keywords)
    corpus = Corpus(root_tag="collection")

    for index in range(articles):
        archetype = ARCHETYPES[index % len(ARCHETYPES)]
        builder = TreeBuilder()
        builder.start(
            "article", {"id": "%s-%d" % (archetype, index), "year": str(1998 + index % 7)}
        )
        builder.start("title")
        if archetype == "off-topic":
            builder.add_text("Notes on %s" % rng.choice(("joins", "locks", "logs")))
        else:
            builder.add_text("A study of %s processing" % keyword_text)
        builder.end("title")

        builder.start("abstract")
        if archetype == "abstract-only":
            builder.add_text(
                "This paper studies %s algorithms in depth." % keyword_text
            )
        else:
            builder.add_text(rng.choice(TOPIC_SENTENCES))
        builder.end("abstract")

        if archetype == "exact":
            _section(
                builder,
                title="Evaluation",
                algorithm=True,
                paragraphs=(
                    "Our %s approach scales linearly." % keyword_text,
                    rng.choice(TOPIC_SENTENCES),
                ),
            )
        elif archetype == "title-keywords":
            _section(
                builder,
                title="Processing %s efficiently" % keyword_text,
                algorithm=True,
                paragraphs=(rng.choice(TOPIC_SENTENCES),),
            )
        elif archetype == "split-algorithm":
            _section(
                builder,
                title="Background",
                algorithm=True,
                paragraphs=(rng.choice(TOPIC_SENTENCES),),
            )
            _section(
                builder,
                title="Discussion",
                algorithm=False,
                paragraphs=("Handling %s workloads remains hard." % keyword_text,),
            )
        elif archetype == "abstract-only":
            _section(
                builder,
                title="Methods",
                algorithm=False,
                paragraphs=(rng.choice(TOPIC_SENTENCES),),
            )
        else:  # off-topic
            _section(
                builder,
                title="Engine internals",
                algorithm=True,
                paragraphs=(rng.choice(OFF_TOPIC_SENTENCES),),
            )
        builder.end("article")
        corpus.add_document(
            builder.finish(), name="%s-%d" % (archetype, index)
        )

    return corpus.document


def _section(builder, title, algorithm, paragraphs):
    builder.start("section")
    builder.start("title")
    builder.add_text(title)
    builder.end("title")
    if algorithm:
        builder.start("algorithm")
        builder.add_text("procedure evaluate(input) ...")
        builder.end("algorithm")
    for text in paragraphs:
        builder.start("paragraph")
        builder.add_text(text)
        builder.end("paragraph")
    builder.end("section")


#: The Figure 1 queries, verbatim in this library's concrete syntax.
#: Q1 is the user query; Q2-Q6 are the relaxations the introduction walks
#: through (Q1 ⊂ Q2, Q1 ⊂ Q3, Q2 ⊂ Q4, Q3 ⊂ Q4, Q4 ⊂ Q5 ⊂ Q6).
FIGURE1_QUERIES = {
    "Q1": (
        '//article[./section[./algorithm and ./paragraph['
        '.contains("XML" and "streaming")]]]'
    ),
    "Q2": (
        '//article[./section[./algorithm and ./paragraph and '
        '.contains("XML" and "streaming")]]'
    ),
    "Q3": (
        '//article[.//algorithm and ./section[./paragraph['
        '.contains("XML" and "streaming")]]]'
    ),
    "Q4": (
        '//article[.//algorithm and ./section[./paragraph and '
        '.contains("XML" and "streaming")]]'
    ),
    "Q5": (
        '//article[./section[./paragraph and '
        '.contains("XML" and "streaming")]]'
    ),
    "Q6": '//article[.contains("XML" and "streaming")]',
}
