"""Retrieval-quality metrics for flexible vs strict evaluation.

The paper's motivation is a *recall* argument: strict XPath semantics
"penalize the user for providing context" by missing relevant answers that
relaxations recover. This module provides the standard IR metrics to
quantify that claim against a ground-truth relevance set:

- precision / recall / F1 at K,
- average precision (AP) and mean average precision over query sets,
- normalized discounted cumulative gain (nDCG) for graded relevance.

`tests/test_quality.py` and `benchmarks/bench_quality_recall.py` use these
to show the strict-vs-flexible recall gap on the archetype corpus, where
ground truth is known by construction.
"""

from __future__ import annotations

import math


def precision_at_k(ranked_ids, relevant_ids, k):
    """Fraction of the top-K that is relevant."""
    if k <= 0:
        raise ValueError("k must be positive")
    top = list(ranked_ids)[:k]
    if not top:
        return 0.0
    hits = sum(1 for item in top if item in relevant_ids)
    return hits / len(top)


def recall_at_k(ranked_ids, relevant_ids, k):
    """Fraction of the relevant set found in the top-K."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant_ids:
        return 0.0
    top = set(list(ranked_ids)[:k])
    hits = len(top & set(relevant_ids))
    return hits / len(relevant_ids)


def f1_at_k(ranked_ids, relevant_ids, k):
    """Harmonic mean of precision and recall at K."""
    precision = precision_at_k(ranked_ids, relevant_ids, k)
    recall = recall_at_k(ranked_ids, relevant_ids, k)
    if precision + recall == 0.0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def average_precision(ranked_ids, relevant_ids):
    """AP: mean of precision at each relevant hit's rank."""
    relevant = set(relevant_ids)
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for rank, item in enumerate(ranked_ids, start=1):
        if item in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def mean_average_precision(runs):
    """MAP over ``(ranked_ids, relevant_ids)`` pairs."""
    runs = list(runs)
    if not runs:
        return 0.0
    return sum(
        average_precision(ranked, relevant) for ranked, relevant in runs
    ) / len(runs)


def dcg_at_k(ranked_ids, gains, k):
    """Discounted cumulative gain with log2 discounting.

    ``gains`` maps item id -> graded relevance (missing items gain 0).
    """
    total = 0.0
    for rank, item in enumerate(list(ranked_ids)[:k], start=1):
        gain = gains.get(item, 0.0)
        if gain:
            total += gain / math.log2(rank + 1)
    return total


def ndcg_at_k(ranked_ids, gains, k):
    """DCG normalized by the ideal ordering's DCG."""
    ideal = sorted(gains.values(), reverse=True)[:k]
    ideal_dcg = sum(
        gain / math.log2(rank + 1)
        for rank, gain in enumerate(ideal, start=1)
        if gain
    )
    if ideal_dcg == 0.0:
        return 0.0
    return dcg_at_k(ranked_ids, gains, k) / ideal_dcg


def compare_strict_vs_flexible(engine, query, relevant_ids, k):
    """One-call summary of the paper's motivating claim for a query.

    Returns a dict with precision/recall/F1 at K for strict evaluation and
    for flexible top-K (hybrid algorithm, structure-first ranking).
    """
    strict_ids = [node.node_id for node in engine.exact(query)]
    flexible = engine.query(query, k=k)
    flexible_ids = [answer.node_id for answer in flexible.answers]
    return {
        "strict": {
            "precision": precision_at_k(strict_ids, relevant_ids, k),
            "recall": recall_at_k(strict_ids, relevant_ids, k),
            "f1": f1_at_k(strict_ids, relevant_ids, k),
            "returned": len(strict_ids),
        },
        "flexible": {
            "precision": precision_at_k(flexible_ids, relevant_ids, k),
            "recall": recall_at_k(flexible_ids, relevant_ids, k),
            "f1": f1_at_k(flexible_ids, relevant_ids, k),
            "returned": len(flexible_ids),
        },
    }
