"""Compact persistence for parsed documents.

XML parsing is the slowest fixed cost in the pipeline; a document that will
be queried repeatedly is better stored in a line-oriented dump of the node
table (the region encoding is implicit in the pre-order layout, so only
parent, tag, attributes and text need storing). Loading fills the columnar
store directly — no per-node objects — and is several times faster than
re-parsing XML.

Format (version 2, the default)::

    flexpath-doc 2
    <node-count>\t<tag-count>
    <escaped-tag-name>          } tag dictionary, one line per
    ...                         } interned tag, in id order
    <parent-id>\t<tag-id>\t<attr-field>\t<escaped-text>
    ...

Version 1 (still loadable, writable with ``version=1``) stores the tag
name inline on every node line instead of interning it::

    flexpath-doc 1
    <node-count>
    <parent-id>\t<tag>\t<attr-field>\t<escaped-text>
    ...

Text and attribute values are escaped with backslash sequences (including
``\\s`` for the ``\\x1f`` attribute-pair separator) so the format stays
line-oriented. The format is an internal convenience, not an interchange
format — use :mod:`repro.xmltree.serialize` for XML output.
"""

from __future__ import annotations

from array import array

from repro.errors import CorruptStorageError, FleXPathError
from repro.xmltree.document import ColumnarStore, Document

_MAGIC_V1 = "flexpath-doc 1"
_MAGIC_V2 = "flexpath-doc 2"

_ATTR_SEPARATOR = "\x1f"


def _escape(text):
    return (
        text.replace("\\", "\\\\")
        .replace("\t", "\\t")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace(_ATTR_SEPARATOR, "\\s")
    )


def _unescape(text):
    if "\\" not in text:
        return text
    parts = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\\" and index + 1 < length:
            follower = text[index + 1]
            if follower == "t":
                parts.append("\t")
            elif follower == "n":
                parts.append("\n")
            elif follower == "r":
                parts.append("\r")
            elif follower == "s":
                parts.append(_ATTR_SEPARATOR)
            elif follower == "\\":
                parts.append("\\")
            else:
                raise FleXPathError("bad escape \\%s" % follower)
            index += 2
        else:
            parts.append(char)
            index += 1
    return "".join(parts)


def _encode_attributes(attributes):
    if not attributes:
        return ""
    return _ATTR_SEPARATOR.join(
        "%s=%s" % (_escape(name), _escape(value))
        for name, value in sorted(attributes.items())
    )


def _decode_attributes(field):
    if not field:
        return None
    attributes = {}
    for pair in field.split(_ATTR_SEPARATOR):
        name, _sep, value = pair.partition("=")
        attributes[_unescape(name)] = _unescape(value)
    return attributes


def dump_document(document, path, version=2):
    """Write a document to the compact node-table format.

    ``version=2`` (default) writes the columnar format with an interned
    tag dictionary; ``version=1`` writes the legacy per-line-tag format.
    """
    store = document.store
    if version == 2:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(_MAGIC_V2 + "\n")
            handle.write("%d\t%d\n" % (len(store), len(store.tags)))
            for name in store.tags:
                handle.write(_escape(name) + "\n")
            attribute_table = store.attribute_table
            texts = store.texts
            for node_id, (parent_id, tag_id) in enumerate(
                zip(store.parent_ids, store.tag_ids)
            ):
                handle.write(
                    "%d\t%d\t%s\t%s\n"
                    % (
                        parent_id,
                        tag_id,
                        _encode_attributes(attribute_table.get(node_id)),
                        _escape(texts[node_id]),
                    )
                )
    elif version == 1:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(_MAGIC_V1 + "\n")
            handle.write("%d\n" % len(store))
            attribute_table = store.attribute_table
            texts = store.texts
            for node_id, (parent_id, tag_id) in enumerate(
                zip(store.parent_ids, store.tag_ids)
            ):
                handle.write(
                    "%d\t%s\t%s\t%s\n"
                    % (
                        parent_id,
                        _escape(store.tags.name_of(tag_id)),
                        _encode_attributes(attribute_table.get(node_id)),
                        _escape(texts[node_id]),
                    )
                )
    else:
        raise FleXPathError("unknown dump version %r" % (version,))


def load_document(path):
    """Load a document previously written by :func:`dump_document`.

    Both format versions are accepted; the version is dispatched on the
    header line.
    """
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        try:
            if header == _MAGIC_V2:
                return _load_v2(handle)
            if header == _MAGIC_V1:
                return _load_v1(handle)
        except FleXPathError:
            raise
        except (ValueError, IndexError, OverflowError) as error:
            # Backstop: no raw parse error from a truncated or bit-flipped
            # dump may escape — same contract as DiskBackend segment opens.
            raise CorruptStorageError(
                "corrupt dump %s: %s" % (path, error)
            ) from None
        raise CorruptStorageError(
            "corrupt dump %s: not a flexpath document dump (bad header %r)"
            % (path, header)
        )


def _finish_store(store, count):
    """Compute region ends from the pre-order parent layout and wrap up."""
    if not count:
        raise CorruptStorageError("corrupt dump: empty document")
    ends = store.ends
    parent_ids = store.parent_ids
    for node_id in range(count - 1, -1, -1):
        parent_id = parent_ids[node_id]
        if parent_id >= 0 and ends[node_id] > ends[parent_id]:
            ends[parent_id] = ends[node_id]
    return Document(store)


def _append_row(store, node_id, parent_id, tag_id, attributes, text):
    """Append one loaded row straight onto the columns."""
    if parent_id < 0:
        level = 0
    else:
        if parent_id >= node_id:
            raise CorruptStorageError(
                "corrupt dump: node %d precedes its parent" % node_id
            )
        level = store.levels[parent_id] + 1
    store.tag_ids.append(tag_id)
    store.parent_ids.append(parent_id)
    store.levels.append(level)
    store.ends.append(node_id + 1)
    store.texts.append(text)
    if attributes:
        store.attribute_table[node_id] = attributes
    ids = store.tag_node_ids.get(tag_id)
    if ids is None:
        ids = store.tag_node_ids[tag_id] = array("i")
    ids.append(node_id)


def _load_v2(handle):
    counts = handle.readline().rstrip("\n").split("\t")
    try:
        count, tag_count = int(counts[0]), int(counts[1])
    except (ValueError, IndexError):
        raise CorruptStorageError("corrupt dump: missing node count") from None

    store = ColumnarStore()
    for index in range(tag_count):
        line = handle.readline()
        if not line:
            raise CorruptStorageError(
                "corrupt dump: expected %d tags, found %d" % (tag_count, index)
            )
        store.tags.intern(_unescape(line.rstrip("\n")))

    # The tag dictionary is known before the first node row, so the hot
    # loop can write the columns directly: local column bindings, no
    # per-row function call, and the tag index built as a dense list
    # indexed by tag id instead of a dict probe per node.
    tag_ids = store.tag_ids
    parent_ids = store.parent_ids
    levels = store.levels
    ends = store.ends
    texts = store.texts
    attribute_table = store.attribute_table
    tag_lists = [array("i") for _ in range(tag_count)]
    for node_id in range(count):
        line = handle.readline()
        if not line:
            raise CorruptStorageError(
                "corrupt dump: expected %d nodes, found %d" % (count, node_id)
            )
        fields = line.rstrip("\n").split("\t")
        if len(fields) != 4:
            raise CorruptStorageError("corrupt dump at node %d" % node_id)
        try:
            parent_id = int(fields[0])
            tag_id = int(fields[1])
        except ValueError:
            raise CorruptStorageError(
                "corrupt dump at node %d (bad id field)" % node_id
            ) from None
        if not 0 <= tag_id < tag_count:
            raise CorruptStorageError(
                "corrupt dump: node %d has unknown tag id %d" % (node_id, tag_id)
            )
        if parent_id < 0:
            level = 0
        elif parent_id >= node_id:
            raise CorruptStorageError(
                "corrupt dump: node %d precedes its parent" % node_id
            )
        else:
            level = levels[parent_id] + 1
        tag_ids.append(tag_id)
        parent_ids.append(parent_id)
        levels.append(level)
        ends.append(node_id + 1)
        texts.append(_unescape(fields[3]))
        attributes = _decode_attributes(fields[2])
        if attributes:
            attribute_table[node_id] = attributes
        tag_lists[tag_id].append(node_id)
    store.tag_node_ids = {
        tag_id: ids for tag_id, ids in enumerate(tag_lists) if ids
    }
    return _finish_store(store, count)


def _load_v1(handle):
    try:
        count = int(handle.readline())
    except ValueError:
        raise CorruptStorageError("corrupt dump: missing node count") from None

    store = ColumnarStore()
    for node_id in range(count):
        line = handle.readline()
        if not line:
            raise CorruptStorageError(
                "corrupt dump: expected %d nodes, found %d" % (count, node_id)
            )
        fields = line.rstrip("\n").split("\t")
        if len(fields) != 4:
            raise CorruptStorageError(
                "corrupt dump at node %d (line %d)" % (node_id, node_id + 3)
            )
        try:
            parent_id = int(fields[0])
        except ValueError:
            raise CorruptStorageError(
                "corrupt dump: bad parent id %r at node %d (line %d)"
                % (fields[0], node_id, node_id + 3)
            ) from None
        tag_id = store.tags.intern(_unescape(fields[1]))
        _append_row(
            store,
            node_id,
            parent_id,
            tag_id,
            _decode_attributes(fields[2]),
            _unescape(fields[3]),
        )
    return _finish_store(store, count)
