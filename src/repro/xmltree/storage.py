"""Compact persistence for parsed documents.

XML parsing is the slowest fixed cost in the pipeline; a document that will
be queried repeatedly is better stored in a line-oriented dump of the node
table (the region encoding is implicit in the pre-order layout, so only
parent, tag, attributes and text need storing). Loading replays the dump
through the tree builder and is several times faster than re-parsing XML.

Format (version 1)::

    flexpath-doc 1
    <node-count>
    <parent-id>\t<tag>\t<attr-json-ish>\t<escaped-text>
    ...

Text and attribute values are escaped with backslash sequences so the
format stays line-oriented. The format is an internal convenience, not an
interchange format — use :mod:`repro.xmltree.serialize` for XML output.
"""

from __future__ import annotations

from repro.errors import FleXPathError
from repro.xmltree.document import Document
from repro.xmltree.node import XMLNode

_MAGIC = "flexpath-doc 1"


def _escape(text):
    return (
        text.replace("\\", "\\\\")
        .replace("\t", "\\t")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
    )


def _unescape(text):
    parts = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\\" and index + 1 < length:
            follower = text[index + 1]
            if follower == "t":
                parts.append("\t")
            elif follower == "n":
                parts.append("\n")
            elif follower == "r":
                parts.append("\r")
            elif follower == "\\":
                parts.append("\\")
            else:
                raise FleXPathError("bad escape \\%s" % follower)
            index += 2
        else:
            parts.append(char)
            index += 1
    return "".join(parts)


def _encode_attributes(attributes):
    if not attributes:
        return ""
    return "\x1f".join(
        "%s=%s" % (_escape(name), _escape(value))
        for name, value in sorted(attributes.items())
    )


def _decode_attributes(field):
    if not field:
        return {}
    attributes = {}
    for pair in field.split("\x1f"):
        name, _sep, value = pair.partition("=")
        attributes[_unescape(name)] = _unescape(value)
    return attributes


def dump_document(document, path):
    """Write a document to the compact node-table format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_MAGIC + "\n")
        handle.write("%d\n" % len(document))
        for node in document.nodes():
            handle.write(
                "%d\t%s\t%s\t%s\n"
                % (
                    node.parent_id,
                    _escape(node.tag),
                    _encode_attributes(node.attributes),
                    _escape(node.text),
                )
            )


def load_document(path):
    """Load a document previously written by :func:`dump_document`."""
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if header != _MAGIC:
            raise FleXPathError(
                "not a flexpath document dump (bad header %r)" % header
            )
        try:
            count = int(handle.readline())
        except ValueError:
            raise FleXPathError("corrupt dump: missing node count") from None

        nodes = []
        tag_index = {}
        levels = {}
        for node_id in range(count):
            line = handle.readline()
            if not line:
                raise FleXPathError(
                    "corrupt dump: expected %d nodes, found %d" % (count, node_id)
                )
            fields = line.rstrip("\n").split("\t")
            if len(fields) != 4:
                raise FleXPathError("corrupt dump at node %d" % node_id)
            parent_id = int(fields[0])
            tag = _unescape(fields[1])
            if parent_id < 0:
                level = 0
            else:
                if parent_id >= node_id:
                    raise FleXPathError(
                        "corrupt dump: node %d precedes its parent" % node_id
                    )
                level = levels[parent_id] + 1
            levels[node_id] = level
            node = XMLNode(
                node_id=node_id,
                level=level,
                tag=tag,
                parent_id=parent_id,
                attributes=_decode_attributes(fields[2]) or None,
            )
            node.text = _unescape(fields[3])
            nodes.append(node)
            tag_index.setdefault(tag, []).append(node)
            if parent_id >= 0:
                nodes[parent_id].child_ids.append(node_id)

        if not nodes:
            raise FleXPathError("corrupt dump: empty document")

        # Recompute region ends from the pre-order parent layout.
        for node in nodes:
            node.end = node.node_id + 1
        for node in reversed(nodes):
            if node.parent_id >= 0:
                parent = nodes[node.parent_id]
                if node.end > parent.end:
                    parent.end = node.end

        return Document(nodes, tag_index)
