"""Programmatic construction of :class:`~repro.xmltree.document.Document`.

Two styles are supported:

- the event-style :class:`TreeBuilder` (``start`` / ``add_text`` / ``end``),
  used by the XML parser and by the XMark generator, and
- the literal-style :func:`element` / :func:`build_document` helpers, which
  make tests and examples read like the tree they construct::

      doc = build_document(
          element("article",
                  element("section",
                          element("paragraph", text="XML streaming"))))

The builder emits directly into a :class:`ColumnarStore` — no intermediate
node objects are created; ``start`` appends one row to each column and
``end`` back-patches the region end.
"""

from __future__ import annotations

from repro.errors import FleXPathError
from repro.xmltree.document import ColumnarStore, Document

_WHITESPACE = " \t\r\n"


def _normalize(text):
    return " ".join(text.split())


class TreeBuilder:
    """Incremental document builder driven by start/text/end events."""

    def __init__(self):
        self._store = ColumnarStore()
        self._stack = []
        self._finished = False

    def start(self, tag, attributes=None):
        """Open an element; returns its node id."""
        if self._finished:
            raise FleXPathError("document already has a complete root")
        stack = self._stack
        parent_id = stack[-1] if stack else -1
        node_id = self._store.append(tag, parent_id, len(stack), attributes)
        stack.append(node_id)
        return node_id

    def add_text(self, text):
        """Append text to the currently open element."""
        if not self._stack:
            stripped = text.strip(_WHITESPACE)
            if stripped:
                raise FleXPathError("text outside of root element: %r" % stripped)
            return
        normalized = _normalize(text)
        if not normalized:
            return
        node_id = self._stack[-1]
        texts = self._store.texts
        current = texts[node_id]
        texts[node_id] = normalized if not current else current + " " + normalized

    def end(self, tag=None):
        """Close the current element, checking the tag when given."""
        if not self._stack:
            raise FleXPathError("end() with no open element")
        node_id = self._stack.pop()
        if tag is not None:
            open_tag = self._store.tag_of(node_id)
            if open_tag != tag:
                raise FleXPathError(
                    "mismatched end tag: expected </%s>, got </%s>" % (open_tag, tag)
                )
        self._store.close(node_id, len(self._store))
        if not self._stack:
            self._finished = True
        return node_id

    def finish(self):
        """Return the completed document."""
        if self._stack:
            raise FleXPathError(
                "unclosed element <%s>" % self._store.tag_of(self._stack[-1])
            )
        if not len(self._store):
            raise FleXPathError("document is empty")
        return Document(self._store)


def element(tag, *children, text=None, attributes=None):
    """Describe an element literal for :func:`build_document`.

    ``children`` are nested :func:`element` literals; ``text`` is the direct
    text of the element.
    """
    return (tag, attributes, text, children)


def build_document(root):
    """Build a document from nested :func:`element` literals.

    Iterative (explicit stack), so literal trees deeper than the Python
    recursion limit build fine.
    """
    builder = TreeBuilder()

    def open_literal(literal):
        tag, attributes, text, children = literal
        builder.start(tag, attributes)
        if text:
            builder.add_text(text)
        return iter(children)

    stack = [open_literal(root)]
    while stack:
        child = next(stack[-1], None)
        if child is None:
            stack.pop()
            builder.end()
        else:
            stack.append(open_literal(child))
    return builder.finish()
