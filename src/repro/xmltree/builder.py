"""Programmatic construction of :class:`~repro.xmltree.document.Document`.

Two styles are supported:

- the event-style :class:`TreeBuilder` (``start`` / ``add_text`` / ``end``),
  used by the XML parser and by the XMark generator, and
- the literal-style :func:`element` / :func:`build_document` helpers, which
  make tests and examples read like the tree they construct::

      doc = build_document(
          element("article",
                  element("section",
                          element("paragraph", text="XML streaming"))))
"""

from __future__ import annotations

from repro.errors import FleXPathError
from repro.xmltree.document import Document
from repro.xmltree.node import XMLNode

_WHITESPACE = " \t\r\n"


def _normalize(text):
    return " ".join(text.split())


class TreeBuilder:
    """Incremental document builder driven by start/text/end events."""

    def __init__(self):
        self._nodes = []
        self._tag_index = {}
        self._stack = []
        self._finished = False

    def start(self, tag, attributes=None):
        """Open an element; returns its node id."""
        if self._finished:
            raise FleXPathError("document already has a complete root")
        parent_id = self._stack[-1] if self._stack else -1
        node = XMLNode(
            node_id=len(self._nodes),
            level=len(self._stack),
            tag=tag,
            parent_id=parent_id,
            attributes=attributes,
        )
        self._nodes.append(node)
        self._tag_index.setdefault(tag, []).append(node)
        if parent_id >= 0:
            self._nodes[parent_id].child_ids.append(node.node_id)
        self._stack.append(node.node_id)
        return node.node_id

    def add_text(self, text):
        """Append text to the currently open element."""
        if not self._stack:
            stripped = text.strip(_WHITESPACE)
            if stripped:
                raise FleXPathError("text outside of root element: %r" % stripped)
            return
        normalized = _normalize(text)
        if not normalized:
            return
        node = self._nodes[self._stack[-1]]
        node.text = normalized if not node.text else node.text + " " + normalized

    def end(self, tag=None):
        """Close the current element, checking the tag when given."""
        if not self._stack:
            raise FleXPathError("end() with no open element")
        node = self._nodes[self._stack.pop()]
        if tag is not None and node.tag != tag:
            raise FleXPathError(
                "mismatched end tag: expected </%s>, got </%s>" % (node.tag, tag)
            )
        node.end = len(self._nodes)
        if not self._stack:
            self._finished = True
        return node.node_id

    def finish(self):
        """Return the completed document."""
        if self._stack:
            raise FleXPathError(
                "unclosed element <%s>" % self._nodes[self._stack[-1]].tag
            )
        if not self._nodes:
            raise FleXPathError("document is empty")
        return Document(self._nodes, self._tag_index)


def element(tag, *children, text=None, attributes=None):
    """Describe an element literal for :func:`build_document`.

    ``children`` are nested :func:`element` literals; ``text`` is the direct
    text of the element.
    """
    return (tag, attributes, text, children)


def build_document(root):
    """Build a document from nested :func:`element` literals."""
    builder = TreeBuilder()

    def emit(literal):
        tag, attributes, text, children = literal
        builder.start(tag, attributes)
        if text:
            builder.add_text(text)
        for child in children:
            emit(child)
        builder.end()

    emit(root)
    return builder.finish()
