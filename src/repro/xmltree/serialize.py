"""Serialization of documents back to XML text.

The emitter walks the tree with an explicit stack (a close "frame" is
pushed behind the children), so documents deeper than Python's recursion
limit serialize cleanly.
"""

from __future__ import annotations


def _escape_text(text):
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(text):
    return _escape_text(text).replace('"', "&quot;")


def to_xml(document, indent="  "):
    """Serialize a document to a pretty-printed XML string.

    Direct text of an element is emitted before its children; the exact
    interleaving of text and child elements is not preserved (the document
    model normalizes text), which is fine for this library's query-oriented
    use.
    """
    parts = []
    # Stack entries: (node, depth, closing). A closing entry emits the end
    # tag after every child frame pushed above it has been handled.
    stack = [(document.root, 0, False)]
    while stack:
        node, depth, closing = stack.pop()
        pad = indent * depth
        if closing:
            parts.append("%s</%s>\n" % (pad, node.tag))
            continue
        attrs = "".join(
            ' %s="%s"' % (name, _escape_attr(value))
            for name, value in sorted(node.attributes.items())
        )
        children = document.children(node)
        if not children and not node.text:
            parts.append("%s<%s%s/>\n" % (pad, node.tag, attrs))
            continue
        if not children:
            parts.append(
                "%s<%s%s>%s</%s>\n"
                % (pad, node.tag, attrs, _escape_text(node.text), node.tag)
            )
            continue
        parts.append("%s<%s%s>\n" % (pad, node.tag, attrs))
        if node.text:
            parts.append("%s%s\n" % (indent * (depth + 1), _escape_text(node.text)))
        stack.append((node, depth, True))
        for child in reversed(children):
            stack.append((child, depth + 1, False))
    return "".join(parts)


def write_xml(document, path, indent="  ", encoding="utf-8"):
    """Serialize a document to a file."""
    with open(path, "w", encoding=encoding) as handle:
        handle.write(to_xml(document, indent=indent))
