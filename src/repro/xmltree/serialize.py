"""Serialization of documents back to XML text."""

from __future__ import annotations


def _escape_text(text):
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(text):
    return _escape_text(text).replace('"', "&quot;")


def to_xml(document, indent="  "):
    """Serialize a document to a pretty-printed XML string.

    Direct text of an element is emitted before its children; the exact
    interleaving of text and child elements is not preserved (the document
    model normalizes text), which is fine for this library's query-oriented
    use.
    """
    parts = []

    def emit(node, depth):
        pad = indent * depth
        attrs = "".join(
            ' %s="%s"' % (name, _escape_attr(value))
            for name, value in sorted(node.attributes.items())
        )
        children = document.children(node)
        if not children and not node.text:
            parts.append("%s<%s%s/>\n" % (pad, node.tag, attrs))
            return
        if not children:
            parts.append(
                "%s<%s%s>%s</%s>\n"
                % (pad, node.tag, attrs, _escape_text(node.text), node.tag)
            )
            return
        parts.append("%s<%s%s>\n" % (pad, node.tag, attrs))
        if node.text:
            parts.append("%s%s\n" % (indent * (depth + 1), _escape_text(node.text)))
        for child in children:
            emit(child, depth + 1)
        parts.append("%s</%s>\n" % (pad, node.tag))

    emit(document.root, 0)
    return "".join(parts)


def write_xml(document, path, indent="  ", encoding="utf-8"):
    """Serialize a document to a file."""
    with open(path, "w", encoding=encoding) as handle:
        handle.write(to_xml(document, indent=indent))
