"""XML node model with region encoding.

Every node in a :class:`~repro.xmltree.document.Document` carries a *region
encoding* ``(start, end, level)`` assigned during a single pre-order
traversal:

- ``start`` is the node's pre-order rank (and also its node id),
- ``end`` is one past the largest ``start`` in the node's subtree,
- ``level`` is the depth of the node (the root has level 0).

Region encoding makes the two structural predicates of tree pattern queries
O(1) to test:

- ``ad(a, d)``  iff  ``a.start < d.start and d.end <= a.end``
- ``pc(a, d)``  iff  ``ad(a, d) and d.level == a.level + 1``

This is the encoding used by the stack-based structural join of
Al-Khalifa et al. (ICDE 2002), which the FleXPath paper builds on.

Since the columnar refactor an ``XMLNode`` is a *flyweight view* over one
row of a :class:`~repro.xmltree.document.ColumnarStore`: the hot structural
fields (``start``, ``end``, ``level``, ``tag``, ``parent_id``) are copied
into slots at view creation so joins pay plain attribute access, while the
cold fields (``text``, ``attributes``, ``child_ids``) read through to the
columns on demand.  Views are created lazily and cached by the owning
document, so object identity per node id is preserved.
"""

from __future__ import annotations

_EMPTY_ATTRIBUTES = {}


class XMLNode:
    """A flyweight view of a single element node.

    Attributes:
        node_id: pre-order rank; equal to ``start``.
        start: region start (inclusive).
        end: region end (exclusive); ``end - start`` is the subtree size.
        level: depth from the root (root is 0).
        tag: element tag name.
        text: text directly inside this element (concatenated over all its
            direct text children, whitespace-normalized).
        parent_id: node id of the parent, or ``-1`` for the root.
        attributes: dict of XML attributes (may be empty; treat as
            read-only — it is backed by the store's attribute table).
        child_ids: ids of the direct children in document order (computed
            from the pre-order layout, not stored).
    """

    __slots__ = (
        "_store",
        "node_id",
        "start",
        "end",
        "level",
        "tag",
        "parent_id",
    )

    def __init__(self, store, node_id):
        self._store = store
        self.node_id = node_id
        self.start = node_id
        self.end = store.ends[node_id]
        self.level = store.levels[node_id]
        self.tag = store.tags.name_of(store.tag_ids[node_id])
        self.parent_id = store.parent_ids[node_id]

    # -- column-backed fields ----------------------------------------------

    @property
    def text(self):
        return self._store.texts[self.node_id]

    @property
    def attributes(self):
        attributes = self._store.attribute_table.get(self.node_id)
        return attributes if attributes is not None else _EMPTY_ATTRIBUTES

    @property
    def child_ids(self):
        """Direct children's ids, derived from the region layout."""
        ends = self._store.ends
        result = []
        child_id = self.node_id + 1
        end = ends[self.node_id]
        while child_id < end:
            result.append(child_id)
            child_id = ends[child_id]
        return result

    # -- structural predicates ---------------------------------------------

    def contains_region(self, other):
        """Return True if ``other`` lies strictly within this node's region."""
        return self.start < other.start and other.end <= self.end

    def is_ancestor_of(self, other):
        """Return True if this node is a proper ancestor of ``other``."""
        return self.contains_region(other)

    def is_parent_of(self, other):
        """Return True if this node is the parent of ``other``."""
        return self.contains_region(other) and other.level == self.level + 1

    def __repr__(self):
        return "XMLNode(id=%d, tag=%r, start=%d, end=%d, level=%d)" % (
            self.node_id,
            self.tag,
            self.start,
            self.end,
            self.level,
        )
