"""XML node model with region encoding.

Every node in a :class:`~repro.xmltree.document.Document` carries a *region
encoding* ``(start, end, level)`` assigned during a single pre-order
traversal:

- ``start`` is the node's pre-order rank (and also its node id),
- ``end`` is one past the largest ``start`` in the node's subtree,
- ``level`` is the depth of the node (the root has level 0).

Region encoding makes the two structural predicates of tree pattern queries
O(1) to test:

- ``ad(a, d)``  iff  ``a.start < d.start and d.end <= a.end``
- ``pc(a, d)``  iff  ``ad(a, d) and d.level == a.level + 1``

This is the encoding used by the stack-based structural join of
Al-Khalifa et al. (ICDE 2002), which the FleXPath paper builds on.
"""

from __future__ import annotations


class XMLNode:
    """A single element node.

    Attributes:
        node_id: pre-order rank; equal to ``start``.
        start: region start (inclusive).
        end: region end (exclusive); ``end - start`` is the subtree size.
        level: depth from the root (root is 0).
        tag: element tag name.
        text: text directly inside this element (concatenated over all its
            direct text children, whitespace-normalized).
        parent_id: node id of the parent, or ``-1`` for the root.
        attributes: dict of XML attributes (may be empty).
    """

    __slots__ = (
        "node_id",
        "start",
        "end",
        "level",
        "tag",
        "text",
        "parent_id",
        "attributes",
        "child_ids",
    )

    def __init__(self, node_id, level, tag, parent_id, attributes=None):
        self.node_id = node_id
        self.start = node_id
        self.end = node_id + 1
        self.level = level
        self.tag = tag
        self.text = ""
        self.parent_id = parent_id
        self.attributes = attributes or {}
        self.child_ids = []

    def contains_region(self, other):
        """Return True if ``other`` lies strictly within this node's region."""
        return self.start < other.start and other.end <= self.end

    def is_ancestor_of(self, other):
        """Return True if this node is a proper ancestor of ``other``."""
        return self.contains_region(other)

    def is_parent_of(self, other):
        """Return True if this node is the parent of ``other``."""
        return self.contains_region(other) and other.level == self.level + 1

    def __repr__(self):
        return "XMLNode(id=%d, tag=%r, start=%d, end=%d, level=%d)" % (
            self.node_id,
            self.tag,
            self.start,
            self.end,
            self.level,
        )
