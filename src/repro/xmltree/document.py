"""Document: an immutable store of XML element nodes with a tag index.

A :class:`Document` owns a list of :class:`~repro.xmltree.node.XMLNode`
objects indexed by node id (pre-order rank) plus an inverted *tag index*
mapping each tag to the id-sorted list of nodes carrying it. Tag lists are
the inputs to structural joins; being naturally sorted by region start is
what makes the stack-based join a single merge pass.
"""

from __future__ import annotations

import bisect

from repro.errors import FleXPathError
from repro.xmltree.node import XMLNode


class Document:
    """An ordered, region-encoded XML document.

    Instances are built by :class:`~repro.xmltree.builder.TreeBuilder` or by
    :func:`~repro.xmltree.parser.parse`; direct construction is internal.
    """

    def __init__(self, nodes, tag_index):
        self._nodes = nodes
        self._tag_index = tag_index

    # -- basic accessors ---------------------------------------------------

    def __len__(self):
        return len(self._nodes)

    def node(self, node_id):
        """Return the node with the given id."""
        return self._nodes[node_id]

    @property
    def root(self):
        """Return the root node."""
        if not self._nodes:
            raise FleXPathError("document is empty")
        return self._nodes[0]

    def nodes(self):
        """Iterate over all nodes in document (pre-)order."""
        return iter(self._nodes)

    @property
    def tags(self):
        """Return the set of tags present in the document."""
        return set(self._tag_index)

    def nodes_with_tag(self, tag):
        """Return the id-sorted list of nodes with the given tag.

        The returned list is shared with the index; callers must not
        mutate it.
        """
        return self._tag_index.get(tag, [])

    def count(self, tag):
        """Return the number of elements with the given tag."""
        return len(self._tag_index.get(tag, ()))

    # -- navigation --------------------------------------------------------

    def parent(self, node):
        """Return the parent node, or None for the root."""
        if node.parent_id < 0:
            return None
        return self._nodes[node.parent_id]

    def children(self, node):
        """Return the list of child nodes in document order."""
        return [self._nodes[cid] for cid in node.child_ids]

    def ancestors(self, node):
        """Yield proper ancestors from parent up to the root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def descendants(self, node):
        """Yield proper descendants in document order."""
        for node_id in range(node.start + 1, node.end):
            yield self._nodes[node_id]

    def subtree_nodes(self, node):
        """Yield the node itself followed by its descendants."""
        for node_id in range(node.start, node.end):
            yield self._nodes[node_id]

    def path_to_root(self, node):
        """Return the list of tags from this node up to the root."""
        tags = [node.tag]
        tags.extend(ancestor.tag for ancestor in self.ancestors(node))
        return tags

    def lowest_common_ancestor(self, first, second):
        """Return the lowest node whose region covers both arguments."""
        low, high = (first, second) if first.start <= second.start else (second, first)
        if low.contains_region(high) or low.node_id == high.node_id:
            return low
        current = self.parent(low)
        while current is not None:
            if current.contains_region(high):
                return current
            current = self.parent(current)
        raise FleXPathError("nodes do not share a root")

    # -- text --------------------------------------------------------------

    def direct_text(self, node):
        """Return the text immediately inside the element."""
        return node.text

    def full_text(self, node):
        """Return the concatenated text of the whole subtree."""
        parts = []
        for sub in self.subtree_nodes(node):
            if sub.text:
                parts.append(sub.text)
        return " ".join(parts)

    # -- structural predicates ---------------------------------------------

    def is_parent(self, ancestor, descendant):
        """Return True if ``ancestor`` is the parent of ``descendant``."""
        return ancestor.is_parent_of(descendant)

    def is_ancestor(self, ancestor, descendant):
        """Return True if ``ancestor`` is a proper ancestor of ``descendant``."""
        return ancestor.is_ancestor_of(descendant)

    def descendants_with_tag(self, node, tag):
        """Return descendants of ``node`` having ``tag``, in document order.

        Uses binary search over the id-sorted tag list, so the cost is
        O(log n + k) for k results.
        """
        tag_nodes = self._tag_index.get(tag, [])
        if not tag_nodes:
            return []
        starts = [n.start for n in tag_nodes]
        lo = bisect.bisect_right(starts, node.start)
        hi = bisect.bisect_left(starts, node.end, lo=lo)
        return tag_nodes[lo:hi]

    def children_with_tag(self, node, tag):
        """Return children of ``node`` having ``tag``, in document order."""
        return [
            child
            for child in self.descendants_with_tag(node, tag)
            if child.level == node.level + 1 and child.parent_id == node.node_id
        ]

    # -- introspection -----------------------------------------------------

    def stats_summary(self):
        """Return a small dict describing the document (for logging/tests)."""
        return {
            "nodes": len(self._nodes),
            "tags": len(self._tag_index),
            "depth": max((n.level for n in self._nodes), default=0),
            "text_bytes": sum(len(n.text) for n in self._nodes),
        }

    def __repr__(self):
        return "Document(nodes=%d, tags=%d)" % (len(self._nodes), len(self._tag_index))
