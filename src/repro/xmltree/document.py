"""Document: a columnar, array-backed store of XML element nodes.

The storage layer is split in two:

- :class:`ColumnarStore` holds the whole node table as parallel columns
  (typed arrays for the structural fields, a list for direct text, a sparse
  attribute table, and an interned tag dictionary).  This is the flattened
  node-table layout of the structural-join literature: per-node memory is a
  handful of machine integers instead of a Python object, and appending a
  whole parsed fragment is a column splice, not a re-parse.
- :class:`Document` is the navigation facade over one store.  It hands out
  :class:`~repro.xmltree.node.XMLNode` *flyweight views* (created lazily,
  cached per node id so identity semantics hold) plus the inverted *tag
  index* mapping each tag to the id-sorted list of nodes carrying it.  Tag
  lists are the inputs to structural joins; being naturally sorted by
  region start is what makes the stack-based join a single merge pass.

Documents built by the parser/builder are immutable; a document owned by a
:class:`~repro.collection.Corpus` grows in place through
:meth:`Document.append_fragment`, which splices another document's columns
under a chosen parent in O(new nodes).
"""

from __future__ import annotations

import bisect
from array import array

from repro.errors import FleXPathError
from repro.xmltree.node import XMLNode


class TagDictionary:
    """Interned tag names: a bidirectional ``name <-> small int`` mapping.

    Ids are assigned densely in first-appearance order, which makes the
    dictionary itself serializable as a plain list of names (dump format
    v2 relies on this).
    """

    __slots__ = ("_names", "_ids")

    def __init__(self, names=()):
        self._names = list(names)
        self._ids = {name: index for index, name in enumerate(self._names)}

    def intern(self, name):
        """Return the id for ``name``, assigning a new one if unseen."""
        tag_id = self._ids.get(name)
        if tag_id is None:
            tag_id = len(self._names)
            self._ids[name] = tag_id
            self._names.append(name)
        return tag_id

    def id_of(self, name):
        """Return the id for ``name``, or -1 if the tag is unknown."""
        return self._ids.get(name, -1)

    def name_of(self, tag_id):
        """Return the tag name for an id."""
        return self._names[tag_id]

    def names(self):
        """Return the names in id order (id ``i`` is ``names()[i]``)."""
        return list(self._names)

    def __len__(self):
        return len(self._names)

    def __contains__(self, name):
        return name in self._ids

    def __iter__(self):
        return iter(self._names)


_EMPTY_IDS = array("i")


class ColumnarStore:
    """The flattened node table: parallel per-node columns.

    Columns (all indexed by node id, which equals the pre-order rank and
    the region ``start``):

    - ``tag_ids``    interned tag id (:class:`TagDictionary` ``tags``),
    - ``parent_ids`` parent node id, -1 for a root,
    - ``levels``     depth (root is 0),
    - ``ends``       region end (exclusive; ``end - id`` is subtree size),
    - ``texts``      direct text (whitespace-normalized, often ``""``),
    - ``attribute_table``  sparse ``node_id -> dict`` (most nodes bare),
    - ``tag_node_ids``     ``tag_id -> array of node ids`` (the tag index,
      id-sorted by construction).

    The structural columns are ``array('i')`` — 16 bytes per node total
    versus a few hundred for an object-per-node model.
    """

    __slots__ = (
        "tags",
        "tag_ids",
        "parent_ids",
        "levels",
        "ends",
        "texts",
        "attribute_table",
        "tag_node_ids",
    )

    def __init__(self):
        self.tags = TagDictionary()
        self.tag_ids = array("i")
        self.parent_ids = array("i")
        self.levels = array("i")
        self.ends = array("i")
        self.texts = []
        self.attribute_table = {}
        self.tag_node_ids = {}

    def __len__(self):
        return len(self.tag_ids)

    # -- row construction ----------------------------------------------------

    def append(self, tag, parent_id, level, attributes=None):
        """Append one node; returns its id. ``end`` starts as a leaf's."""
        node_id = len(self.tag_ids)
        tag_id = self.tags.intern(tag)
        self.tag_ids.append(tag_id)
        self.parent_ids.append(parent_id)
        self.levels.append(level)
        self.ends.append(node_id + 1)
        self.texts.append("")
        if attributes:
            self.attribute_table[node_id] = dict(attributes)
        ids = self.tag_node_ids.get(tag_id)
        if ids is None:
            ids = self.tag_node_ids[tag_id] = array("i")
        ids.append(node_id)
        return node_id

    def close(self, node_id, end):
        """Record the region end of a node once its subtree is complete."""
        self.ends[node_id] = end

    def set_text(self, node_id, text):
        self.texts[node_id] = text

    # -- column access -------------------------------------------------------

    def tag_of(self, node_id):
        return self.tags.name_of(self.tag_ids[node_id])

    def node_ids_with_tag(self, tag):
        """Id-sorted node ids carrying ``tag`` (shared array; don't mutate)."""
        tag_id = self.tags.id_of(tag)
        if tag_id < 0:
            return _EMPTY_IDS
        return self.tag_node_ids.get(tag_id, _EMPTY_IDS)

    # -- the append operation ------------------------------------------------

    def extend_from(self, other, parent_id=-1):
        """Splice all of ``other``'s nodes in as a subtree under ``parent_id``.

        Runs in O(len(other)): every column is an offset-shifted bulk
        extend, tag ids are remapped through the interned dictionary, and
        region ends along the parent chain grow to cover the new subtree.
        Returns the new id of ``other``'s root.
        """
        if other is self:
            raise FleXPathError("cannot splice a store into itself")
        base = len(self)
        level_shift = self.levels[parent_id] + 1 if parent_id >= 0 else 0
        tag_map = [self.tags.intern(name) for name in other.tags.names()]
        self.tag_ids.extend(tag_map[tag_id] for tag_id in other.tag_ids)
        self.parent_ids.extend(
            (pid + base if pid >= 0 else parent_id) for pid in other.parent_ids
        )
        if level_shift:
            self.levels.extend(level + level_shift for level in other.levels)
        else:
            self.levels.extend(other.levels)
        self.ends.extend(end + base for end in other.ends)
        self.texts.extend(other.texts)
        for node_id, attrs in other.attribute_table.items():
            self.attribute_table[base + node_id] = dict(attrs)
        for tag_id, ids in other.tag_node_ids.items():
            target = self.tag_node_ids.setdefault(tag_map[tag_id], array("i"))
            target.extend(node_id + base for node_id in ids)
        new_length = len(self.tag_ids)
        ancestor = parent_id
        while ancestor >= 0:
            if self.ends[ancestor] < new_length:
                self.ends[ancestor] = new_length
            ancestor = self.parent_ids[ancestor]
        return base

    # -- introspection -------------------------------------------------------

    def footprint_bytes(self):
        """Approximate resident size of the node table in bytes.

        Counts the structural arrays, the container overhead of the text
        column and attribute table, and the tag dictionary/index — not the
        text payload strings themselves, which any storage model shares.
        """
        import sys

        total = sum(
            array_.buffer_info()[1] * array_.itemsize
            for array_ in (self.tag_ids, self.parent_ids, self.levels, self.ends)
        )
        total += sys.getsizeof(self.texts)
        total += sys.getsizeof(self.attribute_table)
        for attrs in self.attribute_table.values():
            total += sys.getsizeof(attrs)
            total += sum(
                sys.getsizeof(key) + sys.getsizeof(value)
                for key, value in attrs.items()
            )
        total += sys.getsizeof(self.tag_node_ids)
        for ids in self.tag_node_ids.values():
            total += ids.buffer_info()[1] * ids.itemsize
        total += sum(sys.getsizeof(name) for name in self.tags)
        return total


def _store_from_nodes(nodes):
    """Build a store from node-like objects (legacy construction path)."""
    store = ColumnarStore()
    for node in nodes:
        node_id = store.append(
            node.tag,
            node.parent_id,
            node.level,
            getattr(node, "attributes", None) or None,
        )
        store.set_text(node_id, node.text)
        store.close(node_id, node.end)
    return store


class Document:
    """An ordered, region-encoded XML document over a :class:`ColumnarStore`.

    Instances are built by :class:`~repro.xmltree.builder.TreeBuilder`, by
    :func:`~repro.xmltree.parser.parse`, or by
    :func:`~repro.xmltree.storage.load_document`; direct construction is
    internal.  Node views are lazy and cached, so ``doc.node(i)`` always
    returns the same object for the same id.
    """

    def __init__(self, store, tag_index=None):
        if not isinstance(store, ColumnarStore):
            # Legacy signature: a list of node-like objects (+ ignored index).
            store = _store_from_nodes(store)
        self._store = store
        self._views = [None] * len(store)
        self._tag_views = {}

    # -- basic accessors ---------------------------------------------------

    def __len__(self):
        return len(self._views)

    @property
    def store(self):
        """The underlying :class:`ColumnarStore` (shared, treat as owned)."""
        return self._store

    def node(self, node_id):
        """Return the (cached flyweight) node with the given id."""
        if node_id < 0:
            node_id += len(self._views)
        view = self._views[node_id]
        if view is None:
            view = self._views[node_id] = XMLNode(self._store, node_id)
        return view

    @property
    def root(self):
        """Return the root node."""
        if not self._views:
            raise FleXPathError("document is empty")
        return self.node(0)

    def nodes(self):
        """Iterate over all nodes in document (pre-)order."""
        return (self.node(node_id) for node_id in range(len(self._views)))

    @property
    def tags(self):
        """Return the set of tags present in the document."""
        return set(self._store.tags)

    def nodes_with_tag(self, tag):
        """Return the id-sorted list of nodes with the given tag.

        The returned list is shared with the index; callers must not
        mutate it.
        """
        views = self._tag_views.get(tag)
        if views is None:
            views = [self.node(i) for i in self._store.node_ids_with_tag(tag)]
            self._tag_views[tag] = views
        return views

    def count(self, tag):
        """Return the number of elements with the given tag."""
        return len(self._store.node_ids_with_tag(tag))

    # -- navigation --------------------------------------------------------

    def parent(self, node):
        """Return the parent node, or None for the root."""
        if node.parent_id < 0:
            return None
        return self.node(node.parent_id)

    def children(self, node):
        """Return the list of child nodes in document order.

        Derived from the pre-order layout: the first child directly follows
        the node; each next sibling starts where the previous subtree ends.
        """
        ends = self._store.ends
        result = []
        child_id = node.node_id + 1
        end = ends[node.node_id]
        while child_id < end:
            result.append(self.node(child_id))
            child_id = ends[child_id]
        return result

    def ancestors(self, node):
        """Yield proper ancestors from parent up to the root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def descendants(self, node):
        """Yield proper descendants in document order."""
        for node_id in range(node.start + 1, self._store.ends[node.node_id]):
            yield self.node(node_id)

    def subtree_nodes(self, node):
        """Yield the node itself followed by its descendants."""
        for node_id in range(node.start, self._store.ends[node.node_id]):
            yield self.node(node_id)

    def path_to_root(self, node):
        """Return the list of tags from this node up to the root."""
        tags = [node.tag]
        tags.extend(ancestor.tag for ancestor in self.ancestors(node))
        return tags

    def lowest_common_ancestor(self, first, second):
        """Return the lowest node whose region covers both arguments."""
        low, high = (first, second) if first.start <= second.start else (second, first)
        if low.contains_region(high) or low.node_id == high.node_id:
            return low
        current = self.parent(low)
        while current is not None:
            if current.contains_region(high):
                return current
            current = self.parent(current)
        raise FleXPathError("nodes do not share a root")

    # -- text --------------------------------------------------------------

    def direct_text(self, node):
        """Return the text immediately inside the element."""
        return self._store.texts[node.node_id]

    def full_text(self, node):
        """Return the concatenated text of the whole subtree."""
        texts = self._store.texts
        end = self._store.ends[node.node_id]
        return " ".join(
            text for text in texts[node.start:end] if text
        )

    # -- structural predicates ---------------------------------------------

    def is_parent(self, ancestor, descendant):
        """Return True if ``ancestor`` is the parent of ``descendant``."""
        return ancestor.is_parent_of(descendant)

    def is_ancestor(self, ancestor, descendant):
        """Return True if ``ancestor`` is a proper ancestor of ``descendant``."""
        return ancestor.is_ancestor_of(descendant)

    def descendants_with_tag(self, node, tag):
        """Return descendants of ``node`` having ``tag``, in document order.

        Uses binary search over the id-sorted tag column, so the cost is
        O(log n + k) for k results.
        """
        ids = self._store.node_ids_with_tag(tag)
        if not ids:
            return []
        lo = bisect.bisect_right(ids, node.start)
        hi = bisect.bisect_left(ids, self._store.ends[node.node_id], lo=lo)
        return [self.node(node_id) for node_id in ids[lo:hi]]

    def descendant_ids_with_tag(self, node, tag):
        """Ids of descendants of ``node`` having ``tag`` (id-sorted).

        The pure-column form of :meth:`descendants_with_tag`: two binary
        searches over the tag index and one array slice — no node views
        are materialized.  Join kernels consume this directly.
        """
        ids = self._store.node_ids_with_tag(tag)
        if not ids:
            return _EMPTY_IDS
        lo = bisect.bisect_right(ids, node.start)
        hi = bisect.bisect_left(ids, self._store.ends[node.node_id], lo=lo)
        return ids[lo:hi]

    def child_ids_with_tag(self, node, tag):
        """Ids of children of ``node`` having ``tag`` (id-sorted).

        Filters the descendant id range through the ``parent_ids`` column —
        an exact test, and integer-only until the caller materializes.
        """
        ids = self._store.node_ids_with_tag(tag)
        if not ids:
            return []
        lo = bisect.bisect_right(ids, node.start)
        hi = bisect.bisect_left(ids, self._store.ends[node.node_id], lo=lo)
        parent_ids = self._store.parent_ids
        target = node.node_id
        return [nid for nid in ids[lo:hi] if parent_ids[nid] == target]

    def children_with_tag(self, node, tag):
        """Return children of ``node`` having ``tag``, in document order."""
        return [self.node(nid) for nid in self.child_ids_with_tag(node, tag)]

    # -- growth (the Corpus append path) -------------------------------------

    def append_fragment(self, fragment, parent_id=0):
        """Splice another document's columns in as a subtree of ``parent_id``.

        O(len(fragment)); no re-parse, no node copying.  Region ends along
        the parent chain (and any already-materialized views of those
        ancestors) are updated in place, and cached tag lists are extended
        incrementally (new ids exceed all old ids, so they stay id-sorted).
        Returns the new node id of the fragment root.
        """
        if fragment is self:
            raise FleXPathError("cannot append a document to itself")
        base = self._store.extend_from(fragment._store, parent_id)
        self._views.extend([None] * (len(self._store) - base))
        ancestor = parent_id
        while ancestor >= 0:
            view = self._views[ancestor]
            if view is not None:
                view.end = self._store.ends[ancestor]
            ancestor = self._store.parent_ids[ancestor]
        for tag, views in self._tag_views.items():
            ids = self._store.node_ids_with_tag(tag)
            for node_id in ids[len(views):]:
                views.append(self.node(node_id))
        return base

    # -- introspection -----------------------------------------------------

    def stats_summary(self):
        """Return a small dict describing the document (for logging/tests)."""
        store = self._store
        return {
            "nodes": len(store),
            "tags": len(store.tags),
            "depth": max(store.levels, default=0),
            "text_bytes": sum(len(text) for text in store.texts),
        }

    def __repr__(self):
        return "Document(nodes=%d, tags=%d)" % (
            len(self._store),
            len(self._store.tags),
        )
