"""Region-encoded XML document model.

The substrate every other subsystem builds on: a pre-order node store with
``(start, end, level)`` region encoding, a tag index for structural joins,
a small XML parser, programmatic builders, and a serializer.
"""

from repro.xmltree.builder import TreeBuilder, build_document, element
from repro.xmltree.document import Document
from repro.xmltree.node import XMLNode
from repro.xmltree.parser import parse, parse_file
from repro.xmltree.serialize import to_xml, write_xml
from repro.xmltree.storage import dump_document, load_document

__all__ = [
    "Document",
    "TreeBuilder",
    "XMLNode",
    "build_document",
    "dump_document",
    "element",
    "load_document",
    "parse",
    "parse_file",
    "to_xml",
    "write_xml",
]
