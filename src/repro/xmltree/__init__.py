"""Region-encoded XML document model.

The substrate every other subsystem builds on: a columnar pre-order node
store (:class:`ColumnarStore`) with ``(start, end, level)`` region
encoding, flyweight node views, a tag index for structural joins, a small
XML parser, programmatic builders, a serializer, and a two-version compact
dump format.
"""

from repro.xmltree.builder import TreeBuilder, build_document, element
from repro.xmltree.document import ColumnarStore, Document, TagDictionary
from repro.xmltree.node import XMLNode
from repro.xmltree.parser import parse, parse_file
from repro.xmltree.serialize import to_xml, write_xml
from repro.xmltree.storage import dump_document, load_document

__all__ = [
    "ColumnarStore",
    "Document",
    "TagDictionary",
    "TreeBuilder",
    "XMLNode",
    "build_document",
    "dump_document",
    "element",
    "load_document",
    "parse",
    "parse_file",
    "to_xml",
    "write_xml",
]
