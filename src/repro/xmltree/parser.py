"""A small, dependency-free XML parser.

Handles the XML subset needed for this reproduction: elements with
attributes, character data, entity references (the five predefined ones plus
numeric references), comments, CDATA sections, processing instructions, and
an optional XML declaration / doctype. It does not handle namespaces as
anything other than literal tag text, which matches how the paper treats
tags.

The parser drives a :class:`~repro.xmltree.builder.TreeBuilder`, so element
events append rows straight to the document's columnar store — no
intermediate node objects.  Element nesting is tracked with an explicit
stack (not call recursion), so document depth is bounded by memory, not by
Python's recursion limit.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xmltree.builder import TreeBuilder

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


def parse(text):
    """Parse an XML string into a :class:`Document`."""
    return _Parser(text).parse()


def parse_file(path, encoding="utf-8"):
    """Parse an XML file into a :class:`Document`."""
    with open(path, "r", encoding=encoding) as handle:
        return parse(handle.read())


class _Parser:
    def __init__(self, text):
        self._text = text
        self._pos = 0
        self._length = len(text)
        self._builder = TreeBuilder()

    def parse(self):
        self._skip_prolog()
        if self._pos >= self._length or self._text[self._pos] != "<":
            raise XMLParseError("expected root element", self._pos)
        self._parse_element()
        self._skip_misc()
        if self._pos != self._length:
            raise XMLParseError("trailing content after root element", self._pos)
        return self._builder.finish()

    # -- prolog / misc -----------------------------------------------------

    def _skip_prolog(self):
        while True:
            self._skip_whitespace()
            if self._text.startswith("<?", self._pos):
                self._skip_until("?>")
            elif self._text.startswith("<!--", self._pos):
                self._skip_until("-->")
            elif self._text.startswith("<!DOCTYPE", self._pos):
                self._skip_doctype()
            else:
                return

    def _skip_misc(self):
        while True:
            self._skip_whitespace()
            if self._text.startswith("<!--", self._pos):
                self._skip_until("-->")
            elif self._text.startswith("<?", self._pos):
                self._skip_until("?>")
            else:
                return

    def _skip_doctype(self):
        depth = 0
        start = self._pos
        while self._pos < self._length:
            char = self._text[self._pos]
            self._pos += 1
            if char == "<":
                depth += 1
            elif char == ">":
                depth -= 1
                if depth == 0:
                    return
        raise XMLParseError("unterminated DOCTYPE", start)

    # -- elements ----------------------------------------------------------

    def _parse_element(self):
        """Parse one complete element (with all nested content).

        Iterative: ``open_elements`` holds ``(tag, start_pos)`` for every
        element whose end tag is still pending.
        """
        text = self._text
        builder = self._builder
        open_elements = []
        while True:
            # Positioned at the "<" of a start tag.
            element_start = self._pos
            self._expect("<")
            tag = self._parse_name()
            attributes = self._parse_attributes()
            self._skip_whitespace()
            if text.startswith("/>", self._pos):
                self._pos += 2
                builder.start(tag, attributes)
                builder.end(tag)
                if not open_elements:
                    return
            else:
                self._expect(">")
                builder.start(tag, attributes)
                open_elements.append((tag, element_start))

            # Consume content until a nested start tag (back to the outer
            # loop) or until every open element is closed.
            while open_elements:
                lt = text.find("<", self._pos)
                if lt < 0:
                    tag, element_start = open_elements[-1]
                    raise XMLParseError(
                        "unterminated element <%s>" % tag, element_start
                    )
                if lt > self._pos:
                    builder.add_text(self._decode(text[self._pos:lt]))
                self._pos = lt
                if text.startswith("</", self._pos):
                    self._pos += 2
                    end_tag = self._parse_name()
                    self._skip_whitespace()
                    self._expect(">")
                    tag, _start = open_elements.pop()
                    if end_tag != tag:
                        raise XMLParseError(
                            "mismatched end tag </%s> for <%s>" % (end_tag, tag),
                            lt,
                        )
                    builder.end(tag)
                    if not open_elements:
                        return
                elif text.startswith("<!--", self._pos):
                    self._skip_until("-->")
                elif text.startswith("<![CDATA[", self._pos):
                    end = text.find("]]>", self._pos)
                    if end < 0:
                        raise XMLParseError(
                            "unterminated CDATA section", self._pos
                        )
                    builder.add_text(text[self._pos + 9:end])
                    self._pos = end + 3
                elif text.startswith("<?", self._pos):
                    self._skip_until("?>")
                else:
                    break  # a nested element starts here

    def _parse_attributes(self):
        attributes = None
        while True:
            self._skip_whitespace()
            if self._pos >= self._length:
                raise XMLParseError("unterminated start tag", self._pos)
            char = self._text[self._pos]
            if char in (">", "/"):
                return attributes
            name = self._parse_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._text[self._pos:self._pos + 1]
            if quote not in ("'", '"'):
                raise XMLParseError("attribute value must be quoted", self._pos)
            self._pos += 1
            end = self._text.find(quote, self._pos)
            if end < 0:
                raise XMLParseError("unterminated attribute value", self._pos)
            value = self._decode(self._text[self._pos:end])
            self._pos = end + 1
            if attributes is None:
                attributes = {}
            attributes[name] = value

    # -- lexical helpers ---------------------------------------------------

    def _parse_name(self):
        start = self._pos
        if start >= self._length or self._text[start] not in _NAME_START:
            raise XMLParseError("expected a name", start)
        pos = start + 1
        text = self._text
        while pos < self._length and text[pos] in _NAME_CHARS:
            pos += 1
        self._pos = pos
        return text[start:pos]

    def _decode(self, raw):
        if "&" not in raw:
            return raw
        parts = []
        pos = 0
        while True:
            amp = raw.find("&", pos)
            if amp < 0:
                parts.append(raw[pos:])
                return "".join(parts)
            parts.append(raw[pos:amp])
            semi = raw.find(";", amp)
            if semi < 0:
                raise XMLParseError("unterminated entity reference")
            entity = raw[amp + 1:semi]
            if entity.startswith("#x") or entity.startswith("#X"):
                parts.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                parts.append(chr(int(entity[1:])))
            elif entity in _ENTITIES:
                parts.append(_ENTITIES[entity])
            else:
                raise XMLParseError("unknown entity &%s;" % entity)
            pos = semi + 1

    def _skip_whitespace(self):
        text = self._text
        pos = self._pos
        while pos < self._length and text[pos] in " \t\r\n":
            pos += 1
        self._pos = pos

    def _skip_until(self, marker):
        end = self._text.find(marker, self._pos)
        if end < 0:
            raise XMLParseError("unterminated %r construct" % marker, self._pos)
        self._pos = end + len(marker)

    def _expect(self, literal):
        if not self._text.startswith(literal, self._pos):
            raise XMLParseError("expected %r" % literal, self._pos)
        self._pos += len(literal)
