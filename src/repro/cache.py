"""Tier-2 result cache: whole top-K answers, keyed by the canonical query.

The :class:`~repro.engine.FleXPath` facade fronts every query with a small
LRU over finished :class:`~repro.topk.base.TopKResult` objects.  The key is
the canonical evaluation request — ``(TPQ, k, scheme name, algorithm,
max_relaxations, corpus version)`` — so two textual spellings of the same
tree pattern share one entry (:class:`~repro.query.tpq.TPQ` hashes by its
canonical structural key).

Correctness relies on two facts:

- results are immutable in practice (frozen scores, tuples of answers), so
  handing the same object back twice is safe;
- a document only changes through
  :meth:`~repro.collection.Corpus.add_document`, which both bumps the
  corpus ``version`` (part of the key) and clears the cache through the
  facade's subscription — belt and suspenders, so a stale read is
  impossible even if a caller keeps an old key alive.

Probes are rare (one per facade query), so counters go straight to the
process :class:`~repro.obs.metrics.MetricsRegistry` (``result_cache.*``)
and the ``cache_hit``/``cache_miss`` event seam — no delta folding needed.
Instance-level tallies (hits/misses/evictions/invalidations) ride along so
:meth:`ResultCache.info` can report per-engine numbers even when several
engines share one process registry.

Thread-safety: a single mutex serializes every probe — unlike the tier-1
:class:`~repro.plans.eval_cache.EvaluationCache`, even ``get`` mutates
(LRU ``move_to_end``), and probes are one-per-query rather than
one-per-node, so the lock costs nothing measurable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.events import HUB
from repro.obs.metrics import REGISTRY

DEFAULT_MAX_ENTRIES = 128


class ResultCache:
    """LRU of finished top-K results with registry/event instrumentation."""

    def __init__(self, max_entries=DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key):
        """The cached result for ``key``, or None; refreshes LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
        if entry is None:
            if REGISTRY.enabled:
                REGISTRY.inc("result_cache.misses")
            if HUB.active:
                HUB.emit("cache_miss", {"engine": "result", "cache": "result"})
            return None
        if REGISTRY.enabled:
            REGISTRY.inc("result_cache.hits")
        if HUB.active:
            HUB.emit("cache_hit", {"engine": "result", "cache": "result"})
        return entry

    def put(self, key, result):
        """Store ``result``, evicting the least-recently-used entry if full."""
        evicted = False
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
            entries[key] = result
            if len(entries) > self.max_entries:
                entries.popitem(last=False)
                self._evictions += 1
                evicted = True
            size = len(entries)
        if evicted and REGISTRY.enabled:
            REGISTRY.inc("result_cache.evictions")
        if REGISTRY.enabled:
            REGISTRY.set_gauge("result_cache.size", size)

    def invalidate(self):
        """Drop every entry (corpus growth)."""
        with self._lock:
            dropped = bool(self._entries)
            if dropped:
                self._entries.clear()
                self._invalidations += 1
        if dropped and REGISTRY.enabled:
            REGISTRY.inc("result_cache.invalidations")
        if REGISTRY.enabled:
            REGISTRY.set_gauge("result_cache.size", 0)

    def info(self):
        """Instance-level counters (independent of the process registry)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }

    def __len__(self):
        # Same discipline as every other accessor: len() of an OrderedDict
        # mid-mutation (put's insert + LRU pop) is not a consistent read.
        with self._lock:
            return len(self._entries)

    def __repr__(self):
        with self._lock:
            entries = len(self._entries)
        return "ResultCache(entries=%d, max_entries=%d)" % (
            entries,
            self.max_entries,
        )
