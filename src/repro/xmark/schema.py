"""The XMark schema fragment the generator produces.

This documents (and the generator enforces) the DTD subset exercised by the
paper's evaluation queries — in particular the three features §6 calls out
as enabling relaxations:

- **recursive nodes** (``parlist``): ``description → (text | parlist)``,
  ``parlist → listitem+``, ``listitem → (text | parlist)`` — so
  ``description//parlist`` reaches deeper than ``description/parlist``
  (enables axis generalization);
- **optional nodes** (``incategory``): an item carries zero or more —
  (enables leaf deletion);
- **shared nodes** (``text``): appears under ``mail``, ``description`` and
  ``listitem`` — (enables subtree promotion).

Element tree produced::

    site
    ├── regions
    │   └── {africa,asia,australia,europe,namerica,samerica}
    │       └── item*
    │           ├── location, quantity, name, payment
    │           ├── description → (text | parlist)
    │           ├── shipping
    │           ├── incategory*          (0..3, optional)
    │           └── mailbox → mail* → (from, to, date, text)
    ├── categories → category* → (name, description)
    └── people → person* → (name, emailaddress, ...)

    text → #PCDATA with optional inline bold / keyword / emph children
"""

from __future__ import annotations

ITEM_CHILDREN = (
    "location",
    "quantity",
    "name",
    "payment",
    "description",
    "shipping",
    "incategory",
    "mailbox",
)

TEXT_INLINE = ("bold", "keyword", "emph")

RECURSIVE_TAGS = ("parlist", "listitem")

OPTIONAL_TAGS = ("incategory", "bold", "keyword", "emph")

SHARED_TAGS = ("text", "name", "description")
