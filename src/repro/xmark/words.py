"""Word pools for the XMark-like generator.

The real XMark generator draws its prose from Shakespeare; we use a fixed
vocabulary of common English plus a pool of *marker terms* whose injection
probability the benchmarks control, so ``contains`` selectivities are
predictable and documented per experiment.
"""

from __future__ import annotations

# A compact general-purpose vocabulary (~200 words). Stop words are fine —
# the tokenizer drops them, which mirrors real prose.
VOCABULARY = """
time year people way day man thing woman life child world school state
family student group country problem hand part place case week company
system program question work government number night point home water room
mother area money story fact month lot right study book eye job word
business issue side kind head house service friend father power hour game
line end member law car city community name president team minute idea kid
body information back parent face others level office door health person art
war history party result change morning reason research girl guy moment air
teacher force education foot boy age policy process music market sense
nation plan college interest death experience effect use class control care
field development role effort rate heart drug show leader light voice wife
whole police mind price report decision son view relationship town road
arm difference value building action model season society tax director
position player record paper space ground form event official matter center
couple site project activity star table need court produce american oil
situation cost industry figure street image phone data picture practice
piece land product doctor wall patient worker news test movie north love
support technology
""".split()

# Marker terms injected at controlled rates; benchmarks search for these.
MARKERS = (
    "gold", "vintage", "auction", "treasure", "rare",
    "bargain", "antique", "premium", "handmade", "limited",
)

FIRST_NAMES = (
    "alice", "bruno", "carla", "dmitri", "elena", "farid", "greta",
    "hiro", "irene", "jonas", "kira", "luis", "maria", "nadia",
    "olaf", "priya", "quinn", "rosa", "sven", "tara",
)

LAST_NAMES = (
    "anders", "baker", "costa", "duran", "eriksen", "fischer", "garcia",
    "haddad", "ito", "jensen", "kovacs", "lindgren", "moreau", "novak",
    "okafor", "petrov", "quintero", "rossi", "silva", "tanaka",
)

CATEGORY_WORDS = (
    "coins", "stamps", "books", "paintings", "furniture", "jewelry",
    "maps", "clocks", "ceramics", "instruments", "textiles", "tools",
)

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
