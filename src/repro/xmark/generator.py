"""Deterministic XMark-like document generator.

Produces auction-site documents with the schema of
:mod:`repro.xmark.schema`, sized by an approximate serialized-byte target,
fully reproducible from a seed. The distribution knobs are chosen so the
paper's evaluation queries behave as §6 describes:

- ``//item[./description/parlist]`` (paper Q1) matches a strict subset of
  items, and nested parlists make axis generalization *available*;
- ``./mailbox/mail/text`` (paper Q2) misses items whose mails have no text
  but whose description does — subtree promotion of ``text`` recovers them;
- ``incategory`` and the inline ``bold``/``keyword``/``emph`` children are
  optional, so leaf deletions steadily grow the answer set (paper Q3).

All probabilities are configurable via :class:`XMarkConfig`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmark.words import (
    CATEGORY_WORDS,
    FIRST_NAMES,
    LAST_NAMES,
    MARKERS,
    REGIONS,
    VOCABULARY,
)
from repro.xmltree.builder import TreeBuilder


@dataclass
class XMarkConfig:
    """Distribution knobs for the generator."""

    target_bytes: int = 1 << 20  # ~1 "MB" of serialized content
    seed: int = 42

    # -- structure probabilities ------------------------------------------------
    description_parlist_probability: float = 0.6  # else plain text description
    parlist_recursion_probability: float = 0.35
    parlist_max_depth: int = 4
    listitems_per_parlist: tuple = (1, 3)  # inclusive range
    mails_per_item: tuple = (0, 4)
    mail_text_probability: float = 0.75
    incategory_probability: float = 0.7  # at least one incategory
    incategory_max: int = 3
    inline_probability: float = 0.3  # each of bold/keyword/emph, per text
    nested_inline_probability: float = 0.1  # inline inside inline

    # -- text ---------------------------------------------------------------------
    sentence_words: tuple = (6, 14)
    sentences_per_text: tuple = (1, 3)
    marker_probability: float = 0.12  # chance a sentence carries a marker term
    categories: int = 12
    people: int = 25


class XMarkGenerator:
    """Generates one document per :class:`XMarkConfig`."""

    def __init__(self, config=None):
        self.config = config if config is not None else XMarkConfig()
        self._rng = random.Random(self.config.seed)
        self._builder = None
        self._bytes = 0
        self.items_generated = 0

    # -- public -------------------------------------------------------------------

    def generate(self):
        """Build and return the document."""
        self._rng = random.Random(self.config.seed)
        self._builder = TreeBuilder()
        self._bytes = 0
        self.items_generated = 0

        self._start("site")
        self._emit_categories()
        self._emit_people()
        self._start("regions")
        region_index = 0
        # Round-robin items over regions until the size target is met.
        open_region = None
        while self._bytes < self.config.target_bytes:
            if open_region is None:
                open_region = REGIONS[region_index % len(REGIONS)]
                self._start(open_region)
            self._emit_item()
            # Close the region every few items so regions interleave.
            if self.items_generated % 8 == 0:
                self._end(open_region)
                open_region = None
                region_index += 1
        if open_region is not None:
            self._end(open_region)
        self._end("regions")
        self._end("site")
        return self._builder.finish()

    # -- sections ------------------------------------------------------------------

    def _emit_categories(self):
        self._start("categories")
        for index in range(self.config.categories):
            self._start("category", {"id": "category%d" % index})
            self._text_element("name", self._rng.choice(CATEGORY_WORDS))
            self._start("description")
            self._emit_text_element()
            self._end("description")
            self._end("category")
        self._end("categories")

    def _emit_people(self):
        self._start("people")
        for index in range(self.config.people):
            self._start("person", {"id": "person%d" % index})
            name = "%s %s" % (
                self._rng.choice(FIRST_NAMES),
                self._rng.choice(LAST_NAMES),
            )
            self._text_element("name", name)
            self._text_element(
                "emailaddress", name.replace(" ", ".") + "@example.com"
            )
            self._end("person")
        self._end("people")

    def _emit_item(self):
        rng = self._rng
        config = self.config
        self.items_generated += 1
        self._start("item", {"id": "item%d" % self.items_generated})
        self._text_element("location", rng.choice(REGIONS))
        self._text_element("quantity", str(rng.randint(1, 5)))
        self._text_element(
            "name",
            "%s %s" % (rng.choice(VOCABULARY), rng.choice(VOCABULARY)),
        )
        self._text_element("payment", rng.choice(("cash", "check", "credit")))

        self._start("description")
        if rng.random() < config.description_parlist_probability:
            self._emit_parlist(depth=1)
        else:
            self._emit_text_element()
        self._end("description")

        self._text_element("shipping", rng.choice(("ground", "air", "sea")))

        if rng.random() < config.incategory_probability:
            for _ in range(rng.randint(1, config.incategory_max)):
                self._element_with_attrs(
                    "incategory",
                    {"category": "category%d" % rng.randrange(config.categories)},
                )

        self._start("mailbox")
        for _ in range(rng.randint(*config.mails_per_item)):
            self._emit_mail()
        self._end("mailbox")
        self._end("item")

    def _emit_parlist(self, depth):
        rng = self._rng
        config = self.config
        self._start("parlist")
        for _ in range(rng.randint(*config.listitems_per_parlist)):
            self._start("listitem")
            recurse = (
                depth < config.parlist_max_depth
                and rng.random() < config.parlist_recursion_probability
            )
            if recurse:
                self._emit_parlist(depth + 1)
            else:
                self._emit_text_element()
            self._end("listitem")
        self._end("parlist")

    def _emit_mail(self):
        rng = self._rng
        self._start("mail")
        self._text_element(
            "from",
            "%s %s" % (rng.choice(FIRST_NAMES), rng.choice(LAST_NAMES)),
        )
        self._text_element(
            "to",
            "%s %s" % (rng.choice(FIRST_NAMES), rng.choice(LAST_NAMES)),
        )
        self._text_element(
            "date", "%02d/%02d/2003" % (rng.randint(1, 12), rng.randint(1, 28))
        )
        if rng.random() < self.config.mail_text_probability:
            self._emit_text_element()
        self._end("mail")

    def _emit_text_element(self):
        """A ``text`` element with prose and optional inline children."""
        rng = self._rng
        config = self.config
        self._start("text")
        self._add_text(self._sentences())
        inline_tags = [
            tag
            for tag in ("bold", "keyword", "emph")
            if rng.random() < config.inline_probability
        ]
        for tag in inline_tags:
            self._start(tag)
            self._add_text(self._phrase())
            if rng.random() < config.nested_inline_probability:
                nested = rng.choice(("bold", "keyword", "emph"))
                self._text_element(nested, self._phrase())
            self._end(tag)
        self._end("text")

    # -- prose ----------------------------------------------------------------------

    def _phrase(self):
        rng = self._rng
        words = [rng.choice(VOCABULARY) for _ in range(rng.randint(2, 4))]
        if rng.random() < self.config.marker_probability:
            words.insert(rng.randrange(len(words) + 1), rng.choice(MARKERS))
        return " ".join(words)

    def _sentences(self):
        rng = self._rng
        config = self.config
        parts = []
        for _ in range(rng.randint(*config.sentences_per_text)):
            count = rng.randint(*config.sentence_words)
            words = [rng.choice(VOCABULARY) for _ in range(count)]
            if rng.random() < config.marker_probability:
                words.insert(rng.randrange(len(words) + 1), rng.choice(MARKERS))
            parts.append(" ".join(words) + ".")
        return " ".join(parts)

    # -- builder helpers ---------------------------------------------------------------

    def _start(self, tag, attributes=None):
        self._builder.start(tag, attributes)
        self._bytes += 2 * len(tag) + 5
        if attributes:
            self._bytes += sum(len(k) + len(v) + 4 for k, v in attributes.items())

    def _end(self, tag):
        self._builder.end(tag)

    def _add_text(self, text):
        self._builder.add_text(text)
        self._bytes += len(text)

    def _text_element(self, tag, text):
        self._start(tag)
        self._add_text(text)
        self._end(tag)

    def _element_with_attrs(self, tag, attributes):
        self._start(tag, attributes)
        self._end(tag)


def generate_document(target_bytes=1 << 20, seed=42, config=None):
    """Generate an XMark-like document of roughly ``target_bytes``."""
    if config is None:
        config = XMarkConfig(target_bytes=target_bytes, seed=seed)
    generator = XMarkGenerator(config)
    return generator.generate()
