"""XMark-like synthetic auction data (the paper's evaluation dataset)."""

from repro.xmark.generator import XMarkConfig, XMarkGenerator, generate_document
from repro.xmark.schema import (
    ITEM_CHILDREN,
    OPTIONAL_TAGS,
    RECURSIVE_TAGS,
    SHARED_TAGS,
    TEXT_INLINE,
)

#: The three evaluation queries of §6, verbatim from the paper.
PAPER_Q1 = "//item[./description/parlist]"
PAPER_Q2 = "//item[./description/parlist and ./mailbox/mail/text]"
PAPER_Q3 = (
    "//item[./description/parlist/listitem and "
    "./mailbox/mail/text[./bold and ./keyword and ./emph] and "
    "./name and ./incategory]"
)

PAPER_QUERIES = {"Q1": PAPER_Q1, "Q2": PAPER_Q2, "Q3": PAPER_Q3}

__all__ = [
    "ITEM_CHILDREN",
    "OPTIONAL_TAGS",
    "PAPER_Q1",
    "PAPER_Q2",
    "PAPER_Q3",
    "PAPER_QUERIES",
    "RECURSIVE_TAGS",
    "SHARED_TAGS",
    "TEXT_INLINE",
    "XMarkConfig",
    "XMarkGenerator",
    "generate_document",
]
