"""IR subsystem: tokenizer, Porter stemmer, FTExp language, inverted index,
tf-idf scoring, and the IR engine that evaluates ``contains`` predicates."""

from repro.ir.engine import IREngine, IRMatch
from repro.ir.ftexpr import (
    And,
    Not,
    Or,
    Phrase,
    Term,
    Window,
    conjunction,
    parse_ftexpr,
)
from repro.ir.highlight import highlight, snippet
from repro.ir.index import InvertedIndex, Posting
from repro.ir.matching import ftexpr_matches
from repro.ir.scoring import idf, positive_terms, score_subtree, tf_saturation
from repro.ir.stemmer import stem
from repro.ir.tokenizer import (
    STOP_WORDS,
    normalize_term,
    tokenize,
    tokenize_and_stem,
)

__all__ = [
    "And",
    "IREngine",
    "IRMatch",
    "InvertedIndex",
    "Not",
    "Or",
    "Phrase",
    "Posting",
    "STOP_WORDS",
    "Term",
    "Window",
    "conjunction",
    "ftexpr_matches",
    "highlight",
    "idf",
    "snippet",
    "normalize_term",
    "parse_ftexpr",
    "positive_terms",
    "score_subtree",
    "stem",
    "tf_saturation",
    "tokenize",
    "tokenize_and_stem",
]
