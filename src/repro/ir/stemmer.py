"""Porter stemmer (Porter, 1980).

A from-scratch implementation of the classic five-step suffix-stripping
algorithm, the stemmer the IR literature of the paper's era (and the paper's
own "stemming" references) assume. Behaviour follows the original paper,
including the m() measure, *v* / *d* / *o* conditions, and the step order.
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word, index):
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem_text):
    """Return m: the number of VC sequences in the word."""
    forms = []
    for index in range(len(stem_text)):
        consonant = _is_consonant(stem_text, index)
        if not forms or forms[-1] != consonant:
            forms.append(consonant)
    # forms is like [C, V, C, V, ...]; count V->C transitions.
    count = 0
    for first, second in zip(forms, forms[1:]):
        if first is False and second is True:
            count += 1
    return count


def _contains_vowel(stem_text):
    return any(not _is_consonant(stem_text, i) for i in range(len(stem_text)))


def _ends_double_consonant(word):
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word):
    if len(word) < 3:
        return False
    if not _is_consonant(word, len(word) - 3):
        return False
    if _is_consonant(word, len(word) - 2):
        return False
    if not _is_consonant(word, len(word) - 1):
        return False
    return word[-1] not in "wxy"


def _replace(word, suffix, replacement, min_measure):
    stem_text = word[: len(word) - len(suffix)]
    if _measure(stem_text) > min_measure:
        return stem_text + replacement
    return word


def stem(word):
    """Return the Porter stem of a lower-case word."""
    if len(word) <= 2:
        return word

    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _step2(word)
    word = _step3(word)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word


def _step1a(word):
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word):
    if word.endswith("eed"):
        if _measure(word[:-3]) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step1c(word):
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_SUFFIXES = (
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
)


def _step2(word):
    for suffix, replacement in _STEP2_SUFFIXES:
        if word.endswith(suffix):
            return _replace(word, suffix, replacement, 0)
    return word


_STEP3_SUFFIXES = (
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
)


def _step3(word):
    for suffix, replacement in _STEP3_SUFFIXES:
        if word.endswith(suffix):
            return _replace(word, suffix, replacement, 0)
    return word


_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _step4(word):
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem_text = word[: len(word) - len(suffix)]
            if _measure(stem_text) > 1:
                return stem_text
            return word
    if word.endswith("ion"):
        stem_text = word[:-3]
        if stem_text and stem_text[-1] in "st" and _measure(stem_text) > 1:
            return stem_text
    return word


def _step5a(word):
    if word.endswith("e"):
        stem_text = word[:-1]
        measure = _measure(stem_text)
        if measure > 1:
            return stem_text
        if measure == 1 and not _ends_cvc(stem_text):
            return stem_text
    return word


def _step5b(word):
    if _measure(word) > 1 and word.endswith("ll"):
        return word[:-1]
    return word
