"""Inverted index over element text.

The index maps each (stemmed) term to the pre-order-sorted list of elements
*directly* containing it, with in-element token positions and a prefix-sum
array of occurrence counts. Because node ids are region starts, two binary
searches answer "how many occurrences of ``term`` fall inside the subtree
``[start, end)``" — the primitive behind subtree satisfaction checks,
tf scores, and the ``#contains`` statistics used by predicate penalties.
"""

from __future__ import annotations

import bisect

from repro.ir.tokenizer import tokenize_and_stem


class Posting:
    """Occurrences of one term: parallel arrays sorted by node id."""

    __slots__ = ("node_ids", "position_lists", "count_prefix")

    def __init__(self):
        self.node_ids = []
        self.position_lists = []
        # count_prefix[i] = total occurrences in node_ids[:i]
        self.count_prefix = [0]

    def add(self, node_id, positions):
        self.node_ids.append(node_id)
        self.position_lists.append(tuple(positions))
        self.count_prefix.append(self.count_prefix[-1] + len(positions))

    @property
    def document_frequency(self):
        """Number of elements directly containing the term."""
        return len(self.node_ids)

    @property
    def collection_frequency(self):
        """Total number of occurrences of the term."""
        return self.count_prefix[-1]

    def subtree_occurrences(self, start, end):
        """Total occurrences within the region ``[start, end)``."""
        lo = bisect.bisect_left(self.node_ids, start)
        hi = bisect.bisect_left(self.node_ids, end, lo=lo)
        return self.count_prefix[hi] - self.count_prefix[lo]

    def subtree_has(self, start, end):
        """True if any occurrence falls within ``[start, end)``."""
        lo = bisect.bisect_left(self.node_ids, start)
        return lo < len(self.node_ids) and self.node_ids[lo] < end

    def direct_node_ids_in(self, start, end):
        """Node ids with direct occurrences within ``[start, end)``."""
        lo = bisect.bisect_left(self.node_ids, start)
        hi = bisect.bisect_left(self.node_ids, end, lo=lo)
        return self.node_ids[lo:hi]

    def positions_of(self, node_id):
        """In-element token positions of the term for one node, or ()."""
        index = bisect.bisect_left(self.node_ids, node_id)
        if index < len(self.node_ids) and self.node_ids[index] == node_id:
            return self.position_lists[index]
        return ()


class InvertedIndex:
    """Positional inverted index over a document's element text."""

    def __init__(self, document):
        self._document = document
        self._postings = {}
        self._text_elements = 0
        self._indexed_upto = 0
        self.extend(0)

    def extend(self, start_id, end_id=None):
        """Index nodes ``[start_id, end_id)`` appended to the document.

        The incremental half of corpus ingest: appended node ids exceed
        every indexed id (fragments splice at the end of the node table),
        so each posting's id-sorted invariant survives a plain append and
        no existing posting entry is ever touched.
        """
        document = self._document
        end_id = len(document) if end_id is None else end_id
        if start_id < self._indexed_upto:
            raise ValueError(
                "cannot extend index backwards (indexed to %d, asked for %d)"
                % (self._indexed_upto, start_id)
            )
        for node_id in range(start_id, end_id):
            text = document.node(node_id).text
            if not text:
                continue
            tokens = tokenize_and_stem(text)
            if not tokens:
                continue
            self._text_elements += 1
            per_term = {}
            for position, token in enumerate(tokens):
                per_term.setdefault(token, []).append(position)
            for term, positions in per_term.items():
                self._posting_for_append(term).add(node_id, positions)
        if end_id > self._indexed_upto:
            self._indexed_upto = end_id

    def _posting_for_append(self, term):
        """The mutable posting new occurrences of ``term`` append to.

        Subclasses with sealed base postings (``DiskInvertedIndex``)
        override this so appends land on a hydrated copy of the sealed
        posting rather than silently forking a second one.
        """
        return self._postings.setdefault(term, Posting())

    @property
    def document(self):
        return self._document

    @property
    def text_element_count(self):
        """Number of elements that directly carry indexed text."""
        return self._text_elements

    @property
    def vocabulary_size(self):
        return len(self._postings)

    def posting(self, term):
        """Return the posting for a (stemmed) term, or None.

        The single lookup seam: every accessor below routes through here,
        so lazy subclasses only override this one method.
        """
        return self._postings.get(term)

    def document_frequency(self, term):
        posting = self.posting(term)
        return posting.document_frequency if posting else 0

    def subtree_term_frequency(self, term, node):
        """Occurrences of ``term`` anywhere inside ``node``'s subtree."""
        posting = self.posting(term)
        if posting is None:
            return 0
        return posting.subtree_occurrences(node.start, node.end)

    def subtree_has_term(self, term, node):
        posting = self.posting(term)
        return posting is not None and posting.subtree_has(node.start, node.end)

    def direct_nodes_with_term(self, term):
        """Node ids directly containing ``term`` (pre-order sorted)."""
        posting = self.posting(term)
        return list(posting.node_ids) if posting else []
