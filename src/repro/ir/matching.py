"""Boolean satisfaction of full-text expressions over token sequences.

This is the FTExp *semantics*: given the stemmed token sequence of a scope
(an element's subtree text), decide whether the expression holds. The IR
engine uses the inverted index to avoid materializing token lists for every
candidate, but this module is the ground truth it must agree with.
"""

from __future__ import annotations

from repro.ir.ftexpr import And, Not, Or, Phrase, Term, Window
from repro.ir.tokenizer import normalize_term


def ftexpr_matches(expression, tokens):
    """Return True if ``expression`` is satisfied by the token sequence."""
    positions = {}
    for index, token in enumerate(tokens):
        positions.setdefault(token, []).append(index)
    return _matches(expression, positions)


def _term_positions(word, positions):
    normalized = normalize_term(word)
    if normalized is None:
        return []
    return positions.get(normalized, [])


def _matches(expression, positions):
    if isinstance(expression, Term):
        return bool(_term_positions(expression.word, positions))
    if isinstance(expression, Phrase):
        return _phrase_matches(expression.words, positions)
    if isinstance(expression, And):
        return all(_matches(child, positions) for child in expression.children)
    if isinstance(expression, Or):
        return any(_matches(child, positions) for child in expression.children)
    if isinstance(expression, Not):
        return not _matches(expression.child, positions)
    if isinstance(expression, Window):
        return _window_matches(expression, positions)
    raise TypeError("unknown full-text expression %r" % (expression,))


def _phrase_matches(words, positions):
    """All words at consecutive positions, in order.

    Stop words inside phrases are skipped (they are absent from the index),
    matching how the indexing pipeline would have dropped them.
    """
    kept = [normalize_term(word) for word in words]
    kept = [word for word in kept if word is not None]
    if not kept:
        return False
    if len(kept) == 1:
        return bool(positions.get(kept[0]))
    first = positions.get(kept[0])
    if not first:
        return False
    for start in first:
        if all(
            (start + offset) in positions.get(word, ())
            for offset, word in enumerate(kept[1:], start=1)
        ):
            return True
    return False


def _window_matches(expression, positions):
    """All terms occur within ``size`` consecutive token positions.

    Classic sliding-window scan: merge all occurrences tagged by term,
    then slide over them keeping per-term counts; the expression holds
    as soon as some window of width ``size`` covers every term.
    """
    terms = []
    for word in expression.words:
        normalized = normalize_term(word)
        if normalized is None:
            continue
        terms.append(normalized)
    if not terms:
        return False
    distinct = set(terms)
    occurrences = []
    for term in distinct:
        term_positions = positions.get(term)
        if not term_positions:
            return False
        occurrences.extend((position, term) for position in term_positions)
    occurrences.sort()

    size = expression.size
    counts = {term: 0 for term in distinct}
    covered = 0
    left = 0
    for right, (position, term) in enumerate(occurrences):
        counts[term] += 1
        if counts[term] == 1:
            covered += 1
        while position - occurrences[left][0] >= size:
            left_term = occurrences[left][1]
            counts[left_term] -= 1
            if counts[left_term] == 0:
                covered -= 1
            left += 1
        if covered == len(distinct):
            return True
    return False
