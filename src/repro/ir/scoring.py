"""Keyword relevance scoring, normalized to [0, 1].

The paper assumes "the score returned by the IR engine for contains is
normalized to be in the range [0, 1]" (§4.1) and otherwise delegates the
choice of keyword scoring to the IR engine. We use a bounded tf-idf:

    score(node, expr) = Σ_t idf(t) · sat(t, node)  /  Σ_t idf(t)

over the positive terms t of the expression, where

    sat(t, node) = tf / (tf + 1)        (tf = occurrences in the subtree)
    idf(t)       = log(1 + N / df(t))   (N = #text elements, df = doc freq)

``tf/(tf+1)`` is the classic saturating term-frequency transform; it keeps
each term's contribution in [0, 1) and the weighted average keeps the total
there too. Terms the index has never seen get idf of log(1 + N) and a zero
satisfaction, so unknown terms lower scores rather than crashing.
"""

from __future__ import annotations

import math

from repro.ir.ftexpr import Not


def positive_terms(expression):
    """Return the terms of an expression outside any negation, in order."""
    terms = []

    def walk(expr, negated):
        if isinstance(expr, Not):
            walk(expr.child, not negated)
            return
        children = getattr(expr, "children", None)
        if children is not None:
            for child in children:
                walk(child, negated)
            return
        if not negated:
            terms.extend(expr.terms())

    walk(expression, False)
    # Deduplicate preserving order.
    seen = set()
    unique = []
    for term in terms:
        if term not in seen:
            seen.add(term)
            unique.append(term)
    return unique


def idf(index, term):
    """Inverse document frequency of a stemmed term."""
    total = max(index.text_element_count, 1)
    frequency = index.document_frequency(term)
    return math.log(1.0 + total / (frequency + 1.0))


def tf_saturation(frequency):
    """Map a raw term frequency to [0, 1)."""
    return frequency / (frequency + 1.0)


def score_subtree(index, node, stemmed_terms, idf_index=None):
    """Score a node's subtree for a list of stemmed terms; in [0, 1).

    ``idf_index`` optionally supplies the corpus-wide ``idf`` statistics
    (``text_element_count`` / ``document_frequency``) while term
    frequencies still come from ``index``.  A sharded corpus scores each
    node against its shard-local postings but must weight terms by the
    *global* document frequencies, or per-shard scores would diverge from
    the unsharded engine's.
    """
    if not stemmed_terms:
        return 0.0
    if idf_index is None:
        idf_index = index
    numerator = 0.0
    denominator = 0.0
    for term in stemmed_terms:
        weight = idf(idf_index, term)
        denominator += weight
        frequency = index.subtree_term_frequency(term, node)
        numerator += weight * tf_saturation(frequency)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator
