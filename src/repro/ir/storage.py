"""Persistence for the inverted index.

Building the index is the single largest fixed cost in the pipeline
(tokenizing and stemming every element's text). For a document that is
queried across many sessions, dump the postings once and reload them —
loading skips the linguistic pipeline entirely.

Format (version 1)::

    flexpath-index 1
    <text-element-count>
    <term>\t<node_id>:<p1>,<p2> <node_id>:<p1> ...
    ...

The dump pairs with a document (same node ids); loading against a
different document is detected only as far as node-id bounds allow, so the
caller owns keeping the two files together.
"""

from __future__ import annotations

from repro.errors import FleXPathError
from repro.ir.index import InvertedIndex, Posting

_MAGIC = "flexpath-index 1"


def dump_index(index, path):
    """Write an inverted index's postings to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_MAGIC + "\n")
        handle.write("%d\n" % index.text_element_count)
        for term in sorted(index._postings):
            posting = index._postings[term]
            entries = " ".join(
                "%d:%s"
                % (node_id, ",".join(str(p) for p in positions))
                for node_id, positions in zip(
                    posting.node_ids, posting.position_lists
                )
            )
            handle.write("%s\t%s\n" % (term, entries))


def load_index(document, path):
    """Load postings from ``path`` into an index over ``document``."""
    index = InvertedIndex.__new__(InvertedIndex)
    index._document = document
    index._postings = {}
    node_count = len(document)
    index._indexed_upto = node_count

    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if header != _MAGIC:
            raise FleXPathError(
                "not a flexpath index dump (bad header %r)" % header
            )
        try:
            index._text_elements = int(handle.readline())
        except ValueError:
            raise FleXPathError("corrupt index dump: missing count") from None

        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            term, _sep, entries = line.partition("\t")
            if not term or not entries:
                raise FleXPathError("corrupt index dump near %r" % line[:40])
            posting = Posting()
            for entry in entries.split(" "):
                node_field, _sep, position_field = entry.partition(":")
                try:
                    node_id = int(node_field)
                    positions = [int(p) for p in position_field.split(",")]
                except ValueError:
                    raise FleXPathError(
                        "corrupt index dump near %r" % entry
                    ) from None
                if not 0 <= node_id < node_count:
                    raise FleXPathError(
                        "index dump references node %d outside the document"
                        % node_id
                    )
                posting.add(node_id, positions)
            index._postings[term] = posting
    return index
