"""Full-text expression language (FTExp) for the ``contains`` predicate.

The paper leaves FTExp open-ended ("as complex as an IR engine can handle
— stemming, proximity distance, Boolean predicates") and points at
TeXQuery [2]. We implement the core of that space:

- keywords (stemmed at evaluation time),
- phrases (``"xml streaming"`` with more than one word),
- Boolean combinations ``and`` / ``or`` / ``not``,
- proximity: ``window(5, "xml", "streaming")`` — all terms within a window
  of the given size (in tokens).

The concrete syntax matches the paper's examples::

    "XML" and "streaming"
    ("query" or "search") and not "relational"
    window(8, "top", "k")

All AST nodes are frozen dataclasses: FTExp values are embedded in
``Contains`` predicates, which must be hashable to live in predicate sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FTExprParseError


@dataclass(frozen=True)
class Term:
    """A single keyword."""

    word: str

    def terms(self):
        yield self.word

    def __str__(self):
        return '"%s"' % self.word


@dataclass(frozen=True)
class Phrase:
    """A multi-word phrase; words must occur consecutively."""

    words: tuple

    def terms(self):
        yield from self.words

    def __str__(self):
        return '"%s"' % " ".join(self.words)


@dataclass(frozen=True)
class And:
    """Conjunction of sub-expressions."""

    children: tuple

    def terms(self):
        for child in self.children:
            yield from child.terms()

    def __str__(self):
        return "(%s)" % " and ".join(str(c) for c in self.children)


@dataclass(frozen=True)
class Or:
    """Disjunction of sub-expressions."""

    children: tuple

    def terms(self):
        for child in self.children:
            yield from child.terms()

    def __str__(self):
        return "(%s)" % " or ".join(str(c) for c in self.children)


@dataclass(frozen=True)
class Not:
    """Negation of a sub-expression."""

    child: object

    def terms(self):
        yield from self.child.terms()

    def __str__(self):
        return "not %s" % self.child


@dataclass(frozen=True)
class Window:
    """Proximity: all terms occur within ``size`` consecutive tokens."""

    size: int
    words: tuple

    def terms(self):
        yield from self.words

    def __str__(self):
        quoted = ", ".join('"%s"' % w for w in self.words)
        return "window(%d, %s)" % (self.size, quoted)


FTExpr = (Term, Phrase, And, Or, Not, Window)


def conjunction(*words):
    """Build the common ``"w1" and "w2" and ...`` expression from words."""
    children = tuple(Term(word) for word in words)
    if len(children) == 1:
        return children[0]
    return And(children)


# -- parser -----------------------------------------------------------------


def parse_ftexpr(text):
    """Parse the concrete FTExp syntax into an AST."""
    parser = _FTParser(text)
    expr = parser.parse_or()
    parser.expect_end()
    return expr


class _FTParser:
    def __init__(self, text):
        self._tokens = _tokenize(text)
        self._pos = 0

    def _peek(self):
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self):
        token = self._peek()
        if token is None:
            raise FTExprParseError("unexpected end of full-text expression")
        self._pos += 1
        return token

    def expect_end(self):
        if self._peek() is not None:
            raise FTExprParseError(
                "unexpected token %r in full-text expression" % (self._peek()[1],)
            )

    def parse_or(self):
        children = [self.parse_and()]
        while self._peek() == ("keyword", "or"):
            self._next()
            children.append(self.parse_and())
        if len(children) == 1:
            return children[0]
        return Or(tuple(children))

    def parse_and(self):
        children = [self.parse_unary()]
        while self._peek() == ("keyword", "and"):
            self._next()
            children.append(self.parse_unary())
        if len(children) == 1:
            return children[0]
        return And(tuple(children))

    def parse_unary(self):
        if self._peek() == ("keyword", "not"):
            self._next()
            return Not(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self):
        kind, value = self._next()
        if kind == "lparen":
            expr = self.parse_or()
            if self._next() != ("rparen", ")"):
                raise FTExprParseError("expected ')'")
            return expr
        if kind == "string":
            words = tuple(value.lower().split())
            if not words:
                raise FTExprParseError("empty quoted string")
            if len(words) == 1:
                return Term(words[0])
            return Phrase(words)
        if kind == "word" and value == "window":
            return self._parse_window()
        if kind == "word":
            return Term(value.lower())
        raise FTExprParseError("unexpected token %r" % value)

    def _parse_window(self):
        if self._next() != ("lparen", "("):
            raise FTExprParseError("expected '(' after window")
        kind, value = self._next()
        if kind != "number":
            raise FTExprParseError("window size must be an integer")
        size = int(value)
        if size < 1:
            raise FTExprParseError("window size must be positive")
        words = []
        while self._peek() == ("comma", ","):
            self._next()
            kind, value = self._next()
            if kind == "string":
                words.extend(value.lower().split())
            elif kind == "word":
                words.append(value.lower())
            else:
                raise FTExprParseError("expected a term inside window(...)")
        if self._next() != ("rparen", ")"):
            raise FTExprParseError("expected ')' closing window(...)")
        if not words:
            raise FTExprParseError("window(...) needs at least one term")
        return Window(size, tuple(words))


def _tokenize(text):
    tokens = []
    pos = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char in " \t\r\n":
            pos += 1
        elif char == '"' or char == "'":
            end = text.find(char, pos + 1)
            if end < 0:
                raise FTExprParseError("unterminated quoted string")
            tokens.append(("string", text[pos + 1:end]))
            pos = end + 1
        elif char == "(":
            tokens.append(("lparen", "("))
            pos += 1
        elif char == ")":
            tokens.append(("rparen", ")"))
            pos += 1
        elif char == ",":
            tokens.append(("comma", ","))
            pos += 1
        elif char.isdigit():
            end = pos
            while end < length and text[end].isdigit():
                end += 1
            tokens.append(("number", text[pos:end]))
            pos = end
        elif char.isalpha() or char == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] in "_-"):
                end += 1
            word = text[pos:end]
            if word in ("and", "or", "not"):
                tokens.append(("keyword", word))
            else:
                tokens.append(("word", word))
            pos = end
        else:
            raise FTExprParseError("unexpected character %r" % char)
    return tokens
