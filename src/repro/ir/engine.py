"""The IR engine: evaluate ``contains`` predicates against a document.

Mirrors the contract the FleXPath architecture (Fig. 7) assumes of its IR
component: given a full-text expression, return a ranked list of
``(node, score)`` pairs for the *most specific* elements satisfying the
expression (the semantics of [20, 29] cited in §5.1), plus point queries
used during join processing ("does this context node satisfy the
expression, and with what score?").

Phrases and proximity windows match within a single element's direct text;
Boolean structure and plain terms match anywhere in the subtree.
"""

from __future__ import annotations

import bisect

from repro.errors import FleXPathError
from repro.ir.ftexpr import And, Not, Or, Phrase, Term, Window
from repro.ir.index import InvertedIndex
from repro.ir.matching import ftexpr_matches
from repro.ir.scoring import positive_terms, score_subtree
from repro.ir.tokenizer import normalize_term
from repro.obs.events import HUB
from repro.obs.tracer import NULL_TRACER


class IRMatch:
    """One ranked answer from the IR engine."""

    __slots__ = ("node", "score")

    def __init__(self, node, score):
        self.node = node
        self.score = score

    def __repr__(self):
        return "IRMatch(node=%d, score=%.3f)" % (self.node.node_id, self.score)


class IREngine:
    """Evaluates full-text expressions over one document.

    ``virtual_root_id`` marks a synthetic collection root (a corpus'
    all-spanning node): that node trivially satisfies any expression some
    document satisfies, so it is excluded from ``count_satisfying`` — the
    ``#contains`` statistics of §4.3.1 must count real elements only, or
    every promotion penalty on a corpus is skewed toward 0.
    """

    def __init__(self, document, index=None, virtual_root_id=None):
        self._document = document
        self._index = index if index is not None else InvertedIndex(document)
        self._virtual_root_id = virtual_root_id
        self._idf_index = None
        self._tracer = NULL_TRACER
        self._local_match_cache = {}
        self._most_specific_cache = {}
        self._terms_cache = {}
        self._count_cache = {}
        # Always-on lifetime counters: plain unsynchronized ints, folded
        # into the process MetricsRegistry per query (see metrics_snapshot).
        self._m_cache_hits = 0
        self._m_cache_misses = 0
        self._m_postings_scanned = 0
        self._m_satisfies_calls = 0
        self._m_score_calls = 0

    @property
    def document(self):
        return self._document

    @property
    def index(self):
        return self._index

    @property
    def virtual_root_id(self):
        """Node id excluded from count statistics, or None."""
        return self._virtual_root_id

    def set_tracer(self, tracer):
        """Attach a :class:`~repro.obs.Tracer` (pass ``None`` to detach).

        With a tracer attached the engine reports cache hits/misses and
        postings scanned; detached (the default) those code paths reduce to
        one attribute check.
        """
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def set_idf_source(self, idf_index):
        """Weight keyword scores by another index's ``idf`` statistics.

        ``idf_index`` is any object exposing ``text_element_count`` and
        ``document_frequency(term)``.  A :class:`~repro.backend.sharded.
        ShardedBackend` points every shard-local engine at its corpus-wide
        aggregate so shard-local scores are byte-identical to the
        unsharded engine's; ``None`` restores local statistics.
        """
        self._idf_index = idf_index

    # -- lifetime metrics --------------------------------------------------------

    def metrics_snapshot(self):
        """Lifetime counter values, keyed like the process registry.

        The counters are plain ints bumped unconditionally on the hot
        paths (an attribute increment costs far less than the postings
        probe it annotates); callers fold *deltas* between two snapshots
        into the shared :class:`~repro.obs.MetricsRegistry`, which is
        where the locking lives.
        """
        return {
            "ir.cache_hits": self._m_cache_hits,
            "ir.cache_misses": self._m_cache_misses,
            "ir.postings_scanned": self._m_postings_scanned,
            "ir.satisfies_calls": self._m_satisfies_calls,
            "ir.score_calls": self._m_score_calls,
        }

    def _cache_hit(self, cache):
        self._m_cache_hits += 1
        if self._tracer.enabled:
            self._tracer.count("ir.cache_hits")
        if HUB.active:
            HUB.emit("cache_hit", {"engine": "ir", "cache": cache})

    def _cache_miss(self, cache):
        self._m_cache_misses += 1
        if self._tracer.enabled:
            self._tracer.count("ir.cache_misses")
        if HUB.active:
            HUB.emit("cache_miss", {"engine": "ir", "cache": cache})

    # -- incremental corpus growth ---------------------------------------------

    def extend(self, start_id, end_id=None):
        """Fold appended nodes ``[start_id, end_id)`` into the engine.

        The inverted index extends in place (appended ids keep postings
        sorted); the per-expression caches are document-dependent, so they
        are dropped.  ``_terms_cache`` is a pure expression transform and
        survives.
        """
        self._index.extend(start_id, end_id)
        self._local_match_cache.clear()
        self._most_specific_cache.clear()
        self._count_cache.clear()

    # -- point queries ---------------------------------------------------------

    def satisfies(self, node, expression):
        """True if the subtree of ``node`` satisfies the expression."""
        self._m_satisfies_calls += 1
        if self._tracer.enabled:
            self._tracer.count("ir.satisfies_calls")
        return self._satisfies_region(expression, node.start, node.end)

    def score(self, node, expression):
        """Keyword score of ``node`` for the expression, in [0, 1]."""
        self._m_score_calls += 1
        if self._tracer.enabled:
            self._tracer.count("ir.score_calls")
        terms = self._positive_terms(expression)
        return score_subtree(self._index, node, terms,
                             idf_index=self._idf_index)

    # -- ranked retrieval --------------------------------------------------------

    def most_specific_matches(self, expression):
        """Ranked ``IRMatch`` list of minimal elements satisfying the expression.

        An element qualifies when its subtree satisfies the expression and
        no proper descendant's does; results are sorted by descending score,
        ties broken by document order.
        """
        if expression in self._most_specific_cache:
            self._cache_hit("most_specific")
            return self._most_specific_cache[expression]
        self._cache_miss("most_specific")
        candidates = self._candidate_nodes(expression)
        satisfying = [
            node
            for node in candidates
            if self._satisfies_region(expression, node.start, node.end)
        ]
        satisfying.sort(key=lambda node: node.start)
        minimal = []
        for index, node in enumerate(satisfying):
            next_index = index + 1
            if (
                next_index < len(satisfying)
                and satisfying[next_index].start < node.end
            ):
                continue  # the next satisfying node is a descendant
            minimal.append(node)
        matches = [IRMatch(node, self.score(node, expression)) for node in minimal]
        matches.sort(key=lambda m: (-m.score, m.node.node_id))
        self._most_specific_cache[expression] = matches
        return matches

    def count_satisfying(self, expression, tag=None):
        """Number of elements satisfying the expression.

        With ``tag`` given, counts only elements with that tag — this is the
        ``#contains($i, FTExp)`` statistic of §4.3.1 (``$i`` constrained to
        a tag). Without it, counts all satisfying elements.  A corpus'
        virtual collection root is never counted (see class docstring).
        """
        key = (expression, tag)
        if key in self._count_cache:
            self._cache_hit("count")
            return self._count_cache[key]
        self._cache_miss("count")
        if tag is None:
            pool = self._document.nodes()
        else:
            pool = self._document.nodes_with_tag(tag)
        skip = self._virtual_root_id
        count = sum(
            1
            for node in pool
            if node.node_id != skip
            and self._satisfies_region(expression, node.start, node.end)
        )
        self._count_cache[key] = count
        return count

    # -- internals ------------------------------------------------------------

    def _positive_terms(self, expression):
        """Positive terms of the expression, normalized like indexed text."""
        if expression not in self._terms_cache:
            normalized = []
            for term in positive_terms(expression):
                stemmed = normalize_term(term)
                if stemmed is not None and stemmed not in normalized:
                    normalized.append(stemmed)
            self._terms_cache[expression] = normalized
        return self._terms_cache[expression]

    def _satisfies_region(self, expression, start, end):
        if isinstance(expression, Term):
            normalized = normalize_term(expression.word)
            if normalized is None:
                return False
            self._m_postings_scanned += 1
            if self._tracer.enabled:
                self._tracer.count("ir.postings_scanned")
            posting = self._index.posting(normalized)
            return posting is not None and posting.subtree_has(start, end)
        if isinstance(expression, And):
            return all(
                self._satisfies_region(child, start, end)
                for child in expression.children
            )
        if isinstance(expression, Or):
            return any(
                self._satisfies_region(child, start, end)
                for child in expression.children
            )
        if isinstance(expression, Not):
            return not self._satisfies_region(expression.child, start, end)
        if isinstance(expression, (Phrase, Window)):
            local_ids = self._local_match_ids(expression)
            # Binary-search for a locally matching element inside the region.
            lo = bisect.bisect_left(local_ids, start)
            return lo < len(local_ids) and local_ids[lo] < end
        raise TypeError("unknown full-text expression %r" % (expression,))

    def _local_match_ids(self, expression):
        """Sorted ids of elements whose *direct* text satisfies the
        phrase/window expression.

        Raises :class:`FleXPathError` when every term of the phrase/window
        normalizes to a stop word: such an expression has no indexable
        content to match, and silently returning no matches hid the
        mistake from the user (single stop-word *terms* stay a documented
        no-match — there the term is the whole expression, here the
        positional constraint is unsatisfiable by construction).
        """
        if expression in self._local_match_cache:
            self._cache_hit("local_match")
            return self._local_match_cache[expression]
        words = [normalize_term(word) for word in expression.terms()]
        words = [word for word in words if word is not None]
        if not words:
            kind = "phrase" if isinstance(expression, Phrase) else "window"
            raise FleXPathError(
                "%s %s consists entirely of stop words and can never match"
                % (kind, expression)
            )
        self._cache_miss("local_match")
        candidate_ids = None
        for word in words:
            self._m_postings_scanned += 1
            if self._tracer.enabled:
                self._tracer.count("ir.postings_scanned")
            posting = self._index.posting(word)
            ids = set(posting.node_ids) if posting else set()
            candidate_ids = ids if candidate_ids is None else candidate_ids & ids
        result = []
        if candidate_ids:
            for node_id in sorted(candidate_ids):
                node = self._document.node(node_id)
                positions = {}
                for word in set(words):
                    posting = self._index.posting(word)
                    positions[word] = list(posting.positions_of(node_id))
                if self._local_expression_holds(expression, positions):
                    result.append(node_id)
        self._local_match_cache[expression] = result
        return result

    @staticmethod
    def _local_expression_holds(expression, positions):
        # Rebuild a minimal token table and reuse the reference matcher.
        from repro.ir import matching

        if isinstance(expression, Phrase):
            return matching._phrase_matches(expression.words, positions)
        return matching._window_matches(expression, positions)

    # -- convenience -------------------------------------------------------------

    def matches_text(self, expression, text):
        """Check an expression against free-standing text (testing helper)."""
        from repro.ir.tokenizer import tokenize_and_stem

        return ftexpr_matches(expression, tokenize_and_stem(text))

    def _candidate_nodes(self, expression):
        """Nodes that could possibly be minimal satisfiers: every
        ancestor-or-self of a direct occurrence of a positive term."""
        terms = self._positive_terms(expression)
        seen = set()
        nodes = []
        for term in terms:
            posting = self._index.posting(term)
            if posting is None:
                continue
            for node_id in posting.node_ids:
                node = self._document.node(node_id)
                while node is not None and node.node_id not in seen:
                    seen.add(node.node_id)
                    nodes.append(node)
                    node = self._document.parent(node)
        return nodes
