"""Tokenization for the IR engine.

Lower-cases, splits on non-alphanumeric characters, drops a small stop-word
list, and (optionally) stems with the Porter stemmer. The same pipeline is
used at indexing time and at query time so that terms line up.
"""

from __future__ import annotations

from repro.ir.stemmer import stem

# The classic short stop list; enough to keep the index focused without
# changing which documents satisfy conjunctive queries in practice.
STOP_WORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on that the
    to was were will with this these those they them then than but or not
    into over under after before between during about""".split()
)


def tokenize(text):
    """Split text into lower-case word tokens (no stemming, no stop list)."""
    tokens = []
    word = []
    for char in text:
        if char.isalnum():
            word.append(char.lower())
        elif word:
            tokens.append("".join(word))
            word = []
    if word:
        tokens.append("".join(word))
    return tokens


def tokenize_and_stem(text, stop_words=STOP_WORDS):
    """Full pipeline: tokenize, drop stop words, stem."""
    return [stem(token) for token in tokenize(text) if token not in stop_words]


def normalize_term(term, stop_words=STOP_WORDS):
    """Normalize a single query term the same way document text is.

    Returns None for stop words (a query made only of stop words matches
    nothing rather than everything).
    """
    term = term.lower()
    if term in stop_words:
        return None
    return stem(term)
