"""Result snippets with highlighted query terms.

Downstream users of a full-text engine expect keyword-in-context output;
this module produces it from the same tokenizer pipeline the index uses,
so highlighting agrees exactly with what matched (stems, stop words and
all).
"""

from __future__ import annotations

from repro.ir.scoring import positive_terms
from repro.ir.stemmer import stem
from repro.ir.tokenizer import STOP_WORDS


def _match_positions(text, stemmed_terms):
    """Character spans of words in ``text`` whose stem is a query term."""
    spans = []
    start = None
    for index, char in enumerate(text + " "):
        if char.isalnum():
            if start is None:
                start = index
        elif start is not None:
            word = text[start:index].lower()
            if word not in STOP_WORDS and stem(word) in stemmed_terms:
                spans.append((start, index))
            start = None
    return spans


def highlight(text, expression, marker=("**", "**")):
    """Wrap every positive-term occurrence in ``text`` with markers."""
    stemmed = {stem(term.lower()) for term in positive_terms(expression)}
    spans = _match_positions(text, stemmed)
    if not spans:
        return text
    open_mark, close_mark = marker
    parts = []
    cursor = 0
    for start, end in spans:
        parts.append(text[cursor:start])
        parts.append(open_mark)
        parts.append(text[start:end])
        parts.append(close_mark)
        cursor = end
    parts.append(text[cursor:])
    return "".join(parts)


def snippet(text, expression, width=80, marker=("**", "**")):
    """A window of ``text`` around the first match, highlighted.

    Falls back to the (truncated) prefix when nothing matches.
    """
    stemmed = {stem(term.lower()) for term in positive_terms(expression)}
    spans = _match_positions(text, stemmed)
    if not spans:
        return text[:width] + ("..." if len(text) > width else "")
    first_start, first_end = spans[0]
    center = (first_start + first_end) // 2
    half = width // 2
    window_start = max(0, center - half)
    window_end = min(len(text), window_start + width)
    window_start = max(0, window_end - width)

    clipped = [
        (max(start, window_start), min(end, window_end))
        for start, end in spans
        if end > window_start and start < window_end
    ]
    open_mark, close_mark = marker
    parts = []
    cursor = window_start
    for start, end in clipped:
        parts.append(text[cursor:start])
        parts.append(open_mark)
        parts.append(text[start:end])
        parts.append(close_mark)
        cursor = end
    parts.append(text[cursor:window_end])
    body = "".join(parts)
    prefix = "..." if window_start > 0 else ""
    suffix = "..." if window_end < len(text) else ""
    return prefix + body + suffix
