"""The compile phase: immutable query artifacts and the bounded plan cache.

FleXPath's Figure-7 lifecycle has two halves with very different
lifetimes.  *What a relaxed query means* — the parsed TPQ, its closure
(§3.2), the penalty-ordered relaxation schedule (§4), and the per-level
plans that realize each schedule prefix (§5.2) — depends only on the query
text, the weight assignment, and the corpus statistics.  *How a particular
top-K request evaluates* — which levels actually run, which tuples
survive, what lands in the answer heap — depends on ``k``, the ranking
scheme, and the live caches.  This module owns the first half:

- :class:`CompiledQuery` is the immutable compile artifact.  Every field
  is computed eagerly at construction and never mutated afterwards, so one
  instance may be shared freely between threads and across queries;
- :func:`compile_query` is the pure producer — same inputs, same artifact,
  no side effects on the context;
- :class:`PlanCache` is the bounded, corpus-version-fenced LRU the
  :class:`~repro.topk.base.QueryContext` fronts ``compile_query`` with.
  It absorbs the old unbounded ``QueryContext._schedules`` dict and
  reports ``plan_cache.*`` metrics to the process registry.

The execute half lives in :mod:`repro.topk`: strategies are stateless
policies that walk a :class:`CompiledQuery` with a per-query
:class:`~repro.topk.base.ExecutionSession` carrying all mutable state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.events import HUB
from repro.obs.metrics import REGISTRY
from repro.plans.cost import StaticCostModel
from repro.plans.physical import lower_plan
from repro.plans.plan import build_encoded_plan, build_strict_plan
from repro.query.closure import closure
from repro.query.minimize import minimize
from repro.relax.steps import RelaxationSchedule

#: Default bound on the plan cache (distinct compiled artifacts retained).
DEFAULT_PLAN_CACHE_SIZE = 256


class CompiledQuery:
    """Everything knowable about a query before execution begins.

    Immutable by construction: the schedule, closure, core, and both plan
    families (per-level strict plans for DPO-style walks, per-level encoded
    plans for SSO/Hybrid single-pass evaluation) are built eagerly and
    stored in tuples.  A warm :class:`PlanCache` hit therefore skips
    closure computation, schedule construction, and *all* plan building —
    the acceptance target ``benchmarks/bench_plan_cache.py`` measures.

    Instances hash and compare by identity; the cache key lives in the
    :class:`PlanCache`, not on the artifact.
    """

    __slots__ = (
        "tpq",
        "closure",
        "core",
        "schedule",
        "max_relaxations",
        "skip_useless_gamma",
        "weights",
        "corpus_version",
        "strict_plans",
        "encoded_plans",
        "strict_physical_plans",
        "encoded_physical_plans",
        "cost_model_name",
        "cost_fingerprint",
    )

    def __init__(self, tpq, closure_set, core_set, schedule, max_relaxations,
                 skip_useless_gamma, weights, corpus_version, strict_plans,
                 encoded_plans, strict_physical_plans, encoded_physical_plans,
                 cost_model_name, cost_fingerprint):
        object.__setattr__(self, "tpq", tpq)
        object.__setattr__(self, "closure", closure_set)
        object.__setattr__(self, "core", core_set)
        object.__setattr__(self, "schedule", schedule)
        object.__setattr__(self, "max_relaxations", max_relaxations)
        object.__setattr__(self, "skip_useless_gamma", skip_useless_gamma)
        object.__setattr__(self, "weights", weights)
        object.__setattr__(self, "corpus_version", corpus_version)
        object.__setattr__(self, "strict_plans", strict_plans)
        object.__setattr__(self, "encoded_plans", encoded_plans)
        object.__setattr__(
            self, "strict_physical_plans", strict_physical_plans
        )
        object.__setattr__(
            self, "encoded_physical_plans", encoded_physical_plans
        )
        object.__setattr__(self, "cost_model_name", cost_model_name)
        object.__setattr__(self, "cost_fingerprint", cost_fingerprint)

    def __setattr__(self, name, value):
        raise AttributeError(
            "CompiledQuery is immutable; cannot set %r" % name
        )

    def __delattr__(self, name):
        raise AttributeError(
            "CompiledQuery is immutable; cannot delete %r" % name
        )

    # -- pickling -------------------------------------------------------------
    #
    # A CompiledQuery is the unit the sharded scatter path ships to worker
    # processes.  The default slots protocol restores attributes through
    # ``setattr`` (which this class forbids), so spell the state transfer
    # out with ``object.__setattr__``.  The schedule drops its penalty
    # model in transit (see RelaxationSchedule.__getstate__) — workers
    # only execute prebuilt plans and read per-level scores, both of which
    # are materialized in the artifact.

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- level accessors -----------------------------------------------------

    def __len__(self):
        """Number of relaxation levels beyond the original query."""
        return len(self.schedule)

    def level_count(self):
        """Total levels including level 0 (the original query)."""
        return len(self.schedule) + 1

    def strict_plan(self, level):
        """The prebuilt strict plan evaluating exactly schedule level ``level``."""
        return self.strict_plans[level]

    def encoded_plan(self, level):
        """The prebuilt single-pass plan encoding schedule levels 0..``level``."""
        return self.encoded_plans[level]

    def strict_physical(self, level):
        """The lowered physical plan for the strict plan at ``level``."""
        return self.strict_physical_plans[level]

    def encoded_physical(self, level):
        """The lowered physical plan for the encoded plan at ``level``."""
        return self.encoded_physical_plans[level]

    def structural_score(self, level):
        """Compile-time structural score of answers first seen at ``level``."""
        return self.schedule.structural_score(level)

    def contains_count(self):
        """Number of ``contains`` predicates in the original query."""
        return len(self.tpq.contains)

    def __repr__(self):
        return "CompiledQuery(%s, levels=%d, version=%d)" % (
            self.tpq.to_xpath(),
            len(self.schedule),
            self.corpus_version,
        )


def compile_query(context, tpq, weights=None, max_relaxations=None,
                  skip_useless_gamma=True):
    """Produce the immutable :class:`CompiledQuery` for one request shape.

    Pure with respect to the context: reads the penalty model and corpus
    version, writes nothing.  The artifact captures, in order:

    1. the **closure** of the query's logical expression and its **core**
       (the minimal equivalent set, Theorem 1) — the §3 semantics every
       relaxation is defined against;
    2. the **relaxation schedule** with per-level cumulative penalties
       (cheapest valid drop first, §4);
    3. one prebuilt **strict plan per level** (what DPO and the naive
       baseline execute) and one prebuilt **encoded plan per level** (what
       SSO/Hybrid execute, Figure 8), so the execute phase never builds a
       plan;
    4. one lowered **physical plan per logical plan**: the context's cost
       model orders the joins and picks the physical operator (holistic
       twig join vs. binary pipeline) at compile time, and the model's
       fingerprint is recorded so the :class:`PlanCache` key can fence
       artifacts against cost-model drift (the measured model's answers
       change as feedback accumulates).
    """
    weights = weights if weights is not None else context.weights
    cost_model = getattr(context, "cost_model", None)
    if cost_model is None:
        cost_model = StaticCostModel(context.statistics)
    closure_set = closure(tpq)
    core_set = minimize(closure_set)
    schedule = RelaxationSchedule(
        tpq,
        context.penalties,
        max_steps=max_relaxations,
        skip_useless_gamma=skip_useless_gamma,
    )
    strict_plans = tuple(
        build_strict_plan(entry.query, weights) for entry in schedule.entries
    )
    encoded_plans = tuple(
        build_encoded_plan(schedule, level)
        for level in range(len(schedule) + 1)
    )
    strict_physical_plans = tuple(
        lower_plan(plan, cost_model) for plan in strict_plans
    )
    encoded_physical_plans = tuple(
        lower_plan(plan, cost_model) for plan in encoded_plans
    )
    corpus = context.corpus
    return CompiledQuery(
        tpq=tpq,
        closure_set=closure_set,
        core_set=core_set,
        schedule=schedule,
        max_relaxations=max_relaxations,
        skip_useless_gamma=skip_useless_gamma,
        weights=weights,
        corpus_version=corpus.version if corpus is not None else 0,
        strict_plans=strict_plans,
        encoded_plans=encoded_plans,
        strict_physical_plans=strict_physical_plans,
        encoded_physical_plans=encoded_physical_plans,
        cost_model_name=cost_model.name,
        cost_fingerprint=cost_model.fingerprint(),
    )


class PlanCache:
    """Bounded, thread-safe, corpus-version-fenced LRU of compiled queries.

    The key is the full compile request — ``(TPQ, max_relaxations,
    skip_useless_gamma, corpus version)`` — so a grown corpus can never be
    answered with plans whose penalties were derived from stale statistics
    (the version is in the key *and* :meth:`invalidate` clears eagerly on
    growth, the same belt-and-suspenders the result cache uses).

    All operations take the cache's own mutex; probes are one per compile
    request, not per tuple, so the lock is far off the hot path.  Counters
    go to the process registry (``plan_cache.hits`` / ``.misses`` /
    ``.evictions`` / ``.invalidations``, gauge ``plan_cache.size``) and to
    instance fields surfaced by :meth:`info`.
    """

    def __init__(self, max_entries=DEFAULT_PLAN_CACHE_SIZE):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key):
        """The cached artifact for ``key``, or None; refreshes LRU order."""
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if compiled is None:
            if REGISTRY.enabled:
                REGISTRY.inc("plan_cache.misses")
            if HUB.active:
                HUB.emit("cache_miss", {"engine": "plan", "cache": "plan"})
            return None
        if REGISTRY.enabled:
            REGISTRY.inc("plan_cache.hits")
        if HUB.active:
            HUB.emit("cache_hit", {"engine": "plan", "cache": "plan"})
        return compiled

    def put(self, key, compiled):
        """Store an artifact, evicting the least-recently-used past the bound."""
        evicted = False
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
            entries[key] = compiled
            if len(entries) > self.max_entries:
                entries.popitem(last=False)
                self.evictions += 1
                evicted = True
            size = len(entries)
        if REGISTRY.enabled:
            if evicted:
                REGISTRY.inc("plan_cache.evictions")
            REGISTRY.set_gauge("plan_cache.size", size)

    def invalidate(self):
        """Drop every artifact (corpus growth)."""
        with self._lock:
            had_entries = bool(self._entries)
            self._entries.clear()
            if had_entries:
                self.invalidations += 1
        if REGISTRY.enabled:
            if had_entries:
                REGISTRY.inc("plan_cache.invalidations")
            REGISTRY.set_gauge("plan_cache.size", 0)

    def info(self):
        """JSON-safe snapshot of the cache's counters and occupancy."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __repr__(self):
        return "PlanCache(entries=%d, max_entries=%d, hits=%d, misses=%d)" % (
            len(self),
            self.max_entries,
            self.hits,
            self.misses,
        )
