"""IR-first evaluation — the §5.1 alternative the paper left unexplored.

    "An alternative possibility would first use an inverted index to
    evaluate the contains predicates and filter out potential answers, and
    then match structural predicates. The efficiency of each approach
    depends on the types of queries. A comparison of these two approaches
    would be interesting but is outside the scope of this paper."

This strategy realizes that alternative on top of DPO's level walk: before
evaluating a level's plan, the inverted index computes, for every variable
carrying a ``contains`` predicate, the set of elements (of that variable's
tag) whose subtree satisfies the expression. Structural matching is then
seeded with exactly those elements instead of the full tag list.

When the full-text expression is selective this skips almost all
structural work; when it is unselective (or the contains sits high in the
pattern, where most elements satisfy it) the filtering is pure overhead —
the trade-off the paper predicted, measurable with
``benchmarks/bench_ablation_ir_first.py``.

Stateless: satisfier sets live in the context's shared (locked)
:class:`~repro.plans.eval_cache.EvaluationCache`, everything else per
query in the :class:`~repro.topk.base.ExecutionSession`.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER
from repro.plans.executor import STRICT
from repro.rank.schemes import STRUCTURE_FIRST, rank_answers
from repro.rank.scores import AnswerScore, ScoredAnswer
from repro.topk.base import (
    ExecutionSession,
    TopKResult,
    begin_topk_metrics,
    combined_level_cutoff,
    record_topk_metrics,
)


class IRFirstDPO:
    """DPO with contains-satisfier pre-filtering from the inverted index."""

    name = "IRFirstDPO"

    def __init__(self, context):
        self._context = context

    def _satisfiers(self, ftexpr, tag):
        """Node ids (with the given tag) whose subtree satisfies ``ftexpr``.

        The set lives in the context's shared :class:`EvaluationCache`
        (``satisfiers`` sub-cache), so it survives across queries, is
        shared with any other strategy asking the same question, and is
        invalidated when the corpus grows — the strategy-private dict this
        replaced was never invalidated.
        """
        context = self._context

        def compute():
            ir = context.ir
            backend = context.backend
            if tag is None:
                pool = backend.nodes()
            else:
                pool = backend.nodes_with_tag(tag)
            return frozenset(
                node.node_id for node in pool if ir.satisfies(node, ftexpr)
            )

        return context.eval_cache.satisfier_set((ftexpr, tag), compute)

    def _restrictions_for(self, query):
        restrictions = {}
        for predicate in query.contains:
            satisfiers = self._satisfiers(
                predicate.ftexpr, query.tag_of(predicate.var)
            )
            current = restrictions.get(predicate.var)
            if current is None:
                restrictions[predicate.var] = satisfiers
            else:
                restrictions[predicate.var] = current & satisfiers
        return restrictions

    def top_k(self, query, k, scheme=STRUCTURE_FIRST, max_relaxations=None,
              tracer=NULL_TRACER, control=None):
        context = self._context
        metrics_token = begin_topk_metrics(context)
        with tracer.span("compile"):
            compiled = context.compile(query, max_relaxations=max_relaxations)
        session = ExecutionSession(context, tracer=tracer, control=control)
        with tracer.span("execute"):
            result = self.execute(compiled, session, k, scheme)
        return record_topk_metrics(context, result, metrics_token)

    def execute(self, compiled, session, k, scheme=STRUCTURE_FIRST):
        """DPO's level walk with per-level IR pre-filtering (stateless)."""
        schedule = compiled.schedule
        contains_count = compiled.contains_count()

        cutoff = len(schedule)
        reached_level = None

        for level in range(len(schedule) + 1):
            if level > cutoff:
                break
            entry = schedule.level(level)
            plan = compiled.strict_physical(level)
            with session.tracer.span("ir_filter"):
                restrictions = self._restrictions_for(entry.query)
            result = session.run_plan(
                plan,
                "level %d" % level,
                mode=STRICT,
                pool_restrictions=restrictions,
                exclude_answer_ids=session.seen,
            )

            level_score = schedule.structural_score(level)
            fresh = []
            for answer in result.answers:
                if answer.node_id in session.seen:
                    continue
                session.seen.add(answer.node_id)
                fresh.append(
                    ScoredAnswer(
                        node=answer.node,
                        score=AnswerScore(level_score, answer.score.keyword),
                        relaxation_level=level,
                        satisfied=answer.satisfied,
                    )
                )
            fresh.sort(key=lambda a: scheme.sort_key(a.score), reverse=True)
            session.collected.extend(fresh)

            if len(session.collected) >= k and reached_level is None:
                reached_level = level
                if scheme.requires_all_relaxations:
                    cutoff = len(schedule)
                elif scheme.keyword_headroom(contains_count) > 0:
                    cutoff = combined_level_cutoff(
                        schedule, reached_level, contains_count
                    )
                else:
                    cutoff = level

        answers = rank_answers(session.collected, scheme, k)
        return TopKResult(
            algorithm=self.name,
            query=compiled.tpq,
            k=k,
            scheme=scheme,
            answers=answers,
            relaxations_used=session.levels_evaluated - 1,
            levels_evaluated=session.levels_evaluated,
            stats=session.stats,
            traces=session.traces,
        )
