"""SSO — Static Selectivity Order (§5.1.2, Algorithm 1).

SSO never evaluates intermediate relaxation levels: it uses the selectivity
estimator to decide statically how many of the cheapest relaxations must be
encoded to yield at least K answers, fetches the prebuilt plan encoding
exactly those (Figure 8 style) from the compiled artifact, and evaluates it
once with threshold / ``maxScoreGrowth`` pruning. Intermediate results are
kept **sorted on score** — the re-sorting cost that motivates Hybrid.

When the estimate was optimistic and fewer than K answers come back,
SSO restarts with more relaxations encoded (Algorithm 1, lines 11-13).

Like every strategy, SSO is stateless: per-query state lives in the
:class:`~repro.topk.base.ExecutionSession`, plans in the immutable
:class:`~repro.compiled.CompiledQuery`.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER
from repro.plans.executor import SSO_MODE
from repro.rank.schemes import STRUCTURE_FIRST, rank_answers
from repro.topk.base import (
    ExecutionSession,
    TopKResult,
    begin_topk_metrics,
    combined_level_cutoff,
    record_topk_metrics,
)


class SSO:
    """Static Selectivity Order top-K evaluation."""

    name = "SSO"
    _mode = SSO_MODE

    def __init__(self, context):
        self._context = context

    def choose_level(self, schedule, k, scheme, contains_count):
        """Pick the relaxation level to encode, from selectivity estimates.

        Walks the schedule accumulating estimated result sizes until K is
        reached (Algorithm 1, lines 3-7), then applies the scheme's policy:
        keyword-first encodes everything; combined extends to the §5.1
        cutoff.
        """
        estimator = self._context.estimator
        level = 0
        while level < len(schedule):
            estimate = estimator.estimate(schedule.level(level).query)
            if estimate >= k:
                break
            level += 1
        if scheme.requires_all_relaxations:
            return len(schedule)
        if scheme.keyword_headroom(contains_count) > 0:
            return combined_level_cutoff(schedule, level, contains_count)
        return level

    def top_k(self, query, k, scheme=STRUCTURE_FIRST, max_relaxations=None,
              tracer=NULL_TRACER, control=None):
        """Return the top-K answers of ``query`` under ``scheme``."""
        context = self._context
        metrics_token = begin_topk_metrics(context)
        with tracer.span("compile"):
            compiled = context.compile(query, max_relaxations=max_relaxations)
        session = ExecutionSession(context, tracer=tracer, control=control)
        with tracer.span("execute"):
            result = self.execute(compiled, session, k, scheme)
        return record_topk_metrics(context, result, metrics_token)

    def execute(self, compiled, session, k, scheme=STRUCTURE_FIRST):
        """Run the encoded-plan evaluation (with restarts) — stateless."""
        schedule = compiled.schedule
        contains_count = compiled.contains_count()

        level = self.choose_level(schedule, k, scheme, contains_count)

        while True:
            plan = compiled.encoded_physical(level)
            result = session.run_plan(
                plan,
                "encoded@level %d" % level,
                k=k,
                scheme=scheme,
                mode=self._mode,
            )
            if len(result.answers) >= k or level >= len(schedule):
                break
            # Estimate was optimistic: drop more predicates and restart.
            level += 1
            session.restarts += 1

        answers = rank_answers(result.answers, scheme, k)
        return TopKResult(
            algorithm=self.name,
            query=compiled.tpq,
            k=k,
            scheme=scheme,
            answers=answers,
            relaxations_used=level,
            levels_evaluated=session.levels_evaluated,
            restarts=session.restarts,
            stats=session.stats,
            traces=session.traces,
        )
