"""Naive query rewriting — the baseline the paper argues against.

§1 dismisses the "naive solution" of writing the relaxed queries by hand
and evaluating them all: "tedious and expensive ... in terms of repeated
processing of similar queries and, thus, of lost optimization
opportunities." §7 classifies it as the *rewriting strategy* of
[11, 15, 18, 30] without DPO's optimizations.

This implementation makes the baseline concrete so benchmarks can quantify
what DPO's bookkeeping and SSO's single-plan encoding buy:

- every schedule level is evaluated in full (no early stop at K);
- no answer-id memory across levels — the containment-implied duplicates
  are recomputed at every level and deduplicated only at the end;
- all answers are collected and sorted once, at the end.

Stateless like its siblings: plans come prebuilt from the
:class:`~repro.compiled.CompiledQuery`, per-query state rides the
:class:`~repro.topk.base.ExecutionSession`.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER
from repro.plans.executor import STRICT
from repro.rank.schemes import STRUCTURE_FIRST, rank_answers
from repro.rank.scores import AnswerScore, ScoredAnswer
from repro.topk.base import (
    ExecutionSession,
    TopKResult,
    begin_topk_metrics,
    record_topk_metrics,
)


class NaiveRewriting:
    """Evaluate every relaxation in full; sort everything at the end."""

    name = "NaiveRewriting"

    def __init__(self, context):
        self._context = context

    def top_k(self, query, k, scheme=STRUCTURE_FIRST, max_relaxations=None,
              tracer=NULL_TRACER, control=None):
        context = self._context
        metrics_token = begin_topk_metrics(context)
        with tracer.span("compile"):
            compiled = context.compile(query, max_relaxations=max_relaxations)
        session = ExecutionSession(context, tracer=tracer, control=control)
        with tracer.span("execute"):
            result = self.execute(compiled, session, k, scheme)
        return record_topk_metrics(context, result, metrics_token)

    def execute(self, compiled, session, k, scheme=STRUCTURE_FIRST):
        """Evaluate every level in full over the compiled artifact."""
        schedule = compiled.schedule

        collected = {}
        for level in range(len(schedule) + 1):
            plan = compiled.strict_physical(level)
            result = session.run_plan(plan, "level %d" % level, mode=STRICT)
            level_score = schedule.structural_score(level)
            for answer in result.answers:
                scored = ScoredAnswer(
                    node=answer.node,
                    score=AnswerScore(level_score, answer.score.keyword),
                    relaxation_level=level,
                    satisfied=answer.satisfied,
                )
                current = collected.get(answer.node_id)
                if current is None or scheme.sort_key(scored.score) > scheme.sort_key(
                    current.score
                ):
                    collected[answer.node_id] = scored

        answers = rank_answers(collected.values(), scheme, k)
        return TopKResult(
            algorithm=self.name,
            query=compiled.tpq,
            k=k,
            scheme=scheme,
            answers=answers,
            relaxations_used=len(schedule),
            levels_evaluated=session.levels_evaluated,
            stats=session.stats,
            traces=session.traces,
        )
