"""Naive query rewriting — the baseline the paper argues against.

§1 dismisses the "naive solution" of writing the relaxed queries by hand
and evaluating them all: "tedious and expensive ... in terms of repeated
processing of similar queries and, thus, of lost optimization
opportunities." §7 classifies it as the *rewriting strategy* of
[11, 15, 18, 30] without DPO's optimizations.

This implementation makes the baseline concrete so benchmarks can quantify
what DPO's bookkeeping and SSO's single-plan encoding buy:

- every schedule level is evaluated in full (no early stop at K);
- no answer-id memory across levels — the containment-implied duplicates
  are recomputed at every level and deduplicated only at the end;
- all answers are collected and sorted once, at the end.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER
from repro.plans.executor import STRICT
from repro.plans.plan import build_strict_plan
from repro.rank.schemes import STRUCTURE_FIRST, rank_answers
from repro.rank.scores import AnswerScore, ScoredAnswer
from repro.topk.base import (
    TopKResult,
    begin_topk_metrics,
    record_topk_metrics,
    run_plan_traced,
)


class NaiveRewriting:
    """Evaluate every relaxation in full; sort everything at the end."""

    name = "NaiveRewriting"

    def __init__(self, context):
        self._context = context

    def top_k(self, query, k, scheme=STRUCTURE_FIRST, max_relaxations=None,
              tracer=NULL_TRACER):
        context = self._context
        metrics_token = begin_topk_metrics(context)
        with tracer.span("schedule"):
            schedule = context.schedule(query, max_steps=max_relaxations)

        collected = {}
        stats = []
        traces = []
        for level in range(len(schedule) + 1):
            entry = schedule.level(level)
            plan = build_strict_plan(entry.query, context.weights)
            result = run_plan_traced(
                context, plan, "level %d" % level, tracer, traces, mode=STRICT
            )
            stats.append(result.stats)
            level_score = schedule.structural_score(level)
            for answer in result.answers:
                scored = ScoredAnswer(
                    node=answer.node,
                    score=AnswerScore(level_score, answer.score.keyword),
                    relaxation_level=level,
                    satisfied=answer.satisfied,
                )
                current = collected.get(answer.node_id)
                if current is None or scheme.sort_key(scored.score) > scheme.sort_key(
                    current.score
                ):
                    collected[answer.node_id] = scored

        answers = rank_answers(collected.values(), scheme, k)
        result = TopKResult(
            algorithm=self.name,
            query=query,
            k=k,
            scheme=scheme,
            answers=answers,
            relaxations_used=len(schedule),
            levels_evaluated=len(schedule) + 1,
            stats=stats,
            traces=traces,
        )
        return record_topk_metrics(context, result, metrics_token)
