"""Top-K algorithms: DPO, SSO, Hybrid."""

from repro.topk.base import (
    ExecutionSession,
    QueryContext,
    TopKResult,
    combined_level_cutoff,
)
from repro.topk.dpo import DPO
from repro.topk.hybrid import Hybrid
from repro.topk.ir_first import IRFirstDPO
from repro.topk.naive import NaiveRewriting
from repro.topk.sso import SSO

__all__ = [
    "DPO",
    "ExecutionSession",
    "Hybrid",
    "IRFirstDPO",
    "NaiveRewriting",
    "QueryContext",
    "SSO",
    "TopKResult",
    "combined_level_cutoff",
]
