"""Shared machinery for the top-K algorithms (Fig. 7 architecture).

A :class:`QueryContext` bundles everything the algorithms share per
document: the IR engine, corpus statistics, the penalty model, the
selectivity estimator, the plan executor, and the bounded
:class:`~repro.compiled.PlanCache` of compiled queries. DPO, SSO and
Hybrid are *stateless* strategies over this context: each ``top_k`` call
compiles (or fetches) an immutable :class:`~repro.compiled.CompiledQuery`
and threads every piece of per-query mutable state through an
:class:`ExecutionSession`, so one strategy instance is safely shareable
across threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.backend import as_backend
from repro.compiled import PlanCache, compile_query
from repro.obs.events import HUB
from repro.obs.metrics import REGISTRY
from repro.obs.trace import LevelTrace
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.plans.cost import FeedbackStatistics, MeasuredCostModel
from repro.plans.eval_cache import EvaluationCache
from repro.plans.executor import PlanExecutor
from repro.relax.penalties import UNIFORM_WEIGHTS, PenaltyModel
from repro.stats.selectivity import SelectivityEstimator


class QueryContext:
    """Per-backend evaluation context shared by all top-K algorithms.

    Accepts a :class:`~repro.backend.base.StorageBackend`, a plain
    :class:`~repro.xmltree.document.Document`, or a
    :class:`~repro.collection.Corpus` (bare sources are wrapped through
    :func:`~repro.backend.as_backend`).  Everything physical — navigation,
    postings, statistics — is reached through the backend seam: the
    context's ``statistics`` attribute *is* the backend, which serves the
    full counts surface.  Bound to a growable backend, the context
    subscribes to ingests and drops its derived caches: the backend folds
    the new nodes into its own index and statistics before notifying, so
    only the plan cache (whose schedules' penalties depend on corpus
    counts) and the evaluation cache need invalidation here.

    ``rwlock`` is the context's read/write discipline: queries hold the
    read side, ingest holds the write side for the whole splice-and-extend
    transaction.  The lock *is* the backend's lock, so every context over
    one backend shares a single discipline; a plain document never
    mutates, so its private lock is uncontended.
    """

    def __init__(self, document, ir_engine=None, statistics=None,
                 weights=UNIFORM_WEIGHTS, plan_cache_size=None,
                 cost_model=None):
        backend = as_backend(document, ir_engine=ir_engine,
                             statistics=statistics)
        self.backend = backend
        self.corpus = backend.corpus
        self.document = backend.document
        self.rwlock = backend.lock
        self.ir = backend.ir
        self.statistics = backend
        self.weights = weights
        self.penalties = PenaltyModel(self.statistics, self.ir, weights)
        self.estimator = SelectivityEstimator(self.statistics, self.ir)
        self.eval_cache = EvaluationCache()
        # Physical lowering is cost-model driven: the default feedback
        # model starts out identical to §6's static estimates and refines
        # join ordering / operator choice from the cardinalities the
        # executor observes.  Pass a CostModel to override (ablations pin
        # operator_policy; custom models per docs/EXTENDING.md).
        if cost_model is None:
            cost_model = MeasuredCostModel(self.statistics)
        self.cost_model = cost_model
        feedback = getattr(cost_model, "feedback", None)
        self.feedback = (
            feedback if feedback is not None else FeedbackStatistics()
        )
        self.executor = PlanExecutor(backend, self.ir,
                                     eval_cache=self.eval_cache,
                                     feedback=self.feedback)
        self.plan_cache = (
            PlanCache() if plan_cache_size is None
            else PlanCache(plan_cache_size)
        )
        backend.subscribe(self._on_backend_growth)

    def _on_backend_growth(self, backend, start_id, end_id):
        """Drop derived caches after the backend absorbed an append.

        The backend has already extended its index and statistics over the
        new id range; what remains stale here are the compiled plans and
        the memoized pools / join candidates / contains probes, all keyed
        by node id and document content.
        """
        self.plan_cache.invalidate()
        self.eval_cache.clear()
        # Observed cardinalities refer to the pre-growth corpus.
        self.feedback.clear()

    def attach_tracer(self, tracer):
        """Point the context's IR engine at a tracer (None detaches).

        The executor receives its tracer per ``run`` call; the IR engine is
        long-lived and shared, so tracing is attached for the duration of a
        traced query and detached afterwards.  Because the attachment
        mutates shared state, the facade runs traced queries under the
        context's *write* lock (see DESIGN §10).
        """
        self.ir.set_tracer(tracer)

    def compile(self, query, max_relaxations=None, skip_useless_gamma=True):
        """Return the :class:`~repro.compiled.CompiledQuery` for a request.

        Fronted by the bounded, corpus-version-fenced plan cache: a warm
        hit returns the shared immutable artifact without touching the
        closure, schedule, or plan builders.
        """
        key = (
            query,
            max_relaxations,
            skip_useless_gamma,
            self.backend.version,
            self.cost_model.fingerprint(),
        )
        compiled = self.plan_cache.get(key)
        if compiled is None:
            compiled = compile_query(
                self,
                query,
                max_relaxations=max_relaxations,
                skip_useless_gamma=skip_useless_gamma,
            )
            self.plan_cache.put(key, compiled)
        return compiled

    def schedule(self, query, max_steps=None, skip_useless_gamma=True):
        """Return (and cache) the relaxation schedule for a query."""
        return self.compile(
            query,
            max_relaxations=max_steps,
            skip_useless_gamma=skip_useless_gamma,
        ).schedule


class ExecutionSession:
    """All mutable state of one top-K evaluation, bundled per query.

    Strategies are stateless policies: ``top_k`` creates one session,
    ``execute`` threads it through every helper, and nothing about the
    query ever lands on the shared strategy object or the shared context.
    The fields mirror what the five strategies used to keep in local
    variables — a tracer, the context's evaluation-cache handle, the
    cross-level answer-id dedup set, per-level stats/traces, and the level
    counters the :class:`TopKResult` reports.

    ``control`` is the per-query deadline/cancellation hook (an object with
    a ``check()`` method raising to abort, e.g.
    :class:`~repro.session.QueryControl`): :meth:`run_plan` checks it
    before every plan execution and threads it into the executor as the
    per-join ``checkpoint``, so a timed-out query stops between joins
    rather than running its level to completion.
    """

    __slots__ = (
        "context",
        "tracer",
        "control",
        "eval_cache",
        "seen",
        "collected",
        "stats",
        "traces",
        "levels_evaluated",
        "restarts",
    )

    def __init__(self, context, tracer=NULL_TRACER, control=None):
        self.context = context
        self.tracer = tracer
        self.control = control
        self.eval_cache = context.eval_cache
        self.seen = set()
        self.collected = []
        self.stats = []
        self.traces = []
        self.levels_evaluated = 0
        self.restarts = 0

    def run_plan(self, plan, label, **kwargs):
        """Execute one plan under this session's tracer, recording stats."""
        control = self.control
        if control is not None:
            control.check()
            kwargs.setdefault("checkpoint", control.check)
        result = run_plan_traced(
            self.context, plan, label, self.tracer, self.traces, **kwargs
        )
        self.stats.append(result.stats)
        self.levels_evaluated += 1
        return result


@dataclass
class TopKResult:
    """Outcome of a top-K evaluation."""

    algorithm: str
    query: object
    k: int
    scheme: object
    answers: list  # top-K ScoredAnswer, best first
    relaxations_used: int  # schedule levels walked / encoded
    levels_evaluated: int  # plans actually executed (DPO > 1, SSO/Hybrid ≥ 1)
    restarts: int = 0
    stats: list = field(default_factory=list)  # ExecutionStats per plan run
    traces: list = field(default_factory=list)  # LevelTrace per run (traced)
    shard_rounds: int = 0  # coordinated scatter rounds (sharded execution)
    shards_pruned: int = 0  # shards retired by the maxScoreGrowth bound

    def nodes(self):
        return [answer.node for answer in self.answers]

    def node_ids(self):
        return [answer.node_id for answer in self.answers]

    def __repr__(self):
        return "TopKResult(%s, k=%d, answers=%d, relaxations=%d)" % (
            self.algorithm,
            self.k,
            len(self.answers),
            self.relaxations_used,
        )


def begin_topk_metrics(context):
    """Open a metrics window for one ``top_k`` call.

    Returns an opaque token for :func:`record_topk_metrics`, or None when
    the process registry is disabled — the disabled path costs one
    attribute check, mirroring ``NULL_TRACER``.  The token captures the
    start time and the IR engine's lifetime counters so only this query's
    *deltas* get folded into the shared registry.
    """
    if not REGISTRY.enabled:
        return None
    return (
        perf_counter(),
        context.ir.metrics_snapshot(),
        context.eval_cache.metrics_snapshot(),
    )


def record_topk_metrics(context, result, token):
    """Close a metrics window: fold one evaluation into the registry.

    Records, per algorithm, the query count, levels explored, answers
    returned, restarts, and a wall-time histogram — plus the IR engine's
    cache and postings deltas accumulated while the window was open.
    Returns ``result`` so strategies can fold this into their return
    statement.
    """
    if token is None:
        return result
    started, ir_before, eval_before = token
    seconds = perf_counter() - started
    algorithm = result.algorithm.lower()
    folded = {
        "topk.%s.queries" % algorithm: 1,
        "topk.%s.levels_evaluated" % algorithm: result.levels_evaluated,
        "topk.%s.answers_returned" % algorithm: len(result.answers),
    }
    if result.restarts:
        folded["topk.%s.restarts" % algorithm] = result.restarts
    for key, value in context.ir.metrics_snapshot().items():
        delta = value - ir_before[key]
        if delta:
            folded[key] = delta
    for key, value in context.eval_cache.metrics_snapshot().items():
        delta = value - eval_before[key]
        if delta:
            folded[key] = delta
    REGISTRY.inc_many(folded)
    REGISTRY.observe("topk.%s.seconds" % algorithm, seconds)
    return result


def run_plan_traced(context, plan, label, tracer, traces, **kwargs):
    """Execute one plan, capturing a per-level trace when tracing is on.

    Shared by every top-K strategy: with a live tracer, the plan runs
    against a fresh per-level :class:`Tracer` whose spans are merged into
    the query-wide one and recorded as a :class:`LevelTrace` in ``traces``;
    with the null tracer this is exactly one extra ``enabled`` check.
    This is also the ``level_executed`` event seam — one emission per plan
    execution, gated on the hub's no-listener fast path.
    """
    if not tracer.enabled:
        result = context.executor.run(plan, **kwargs)
        if HUB.active:
            HUB.emit(
                "level_executed",
                {"label": label, "stats": result.stats.as_dict()},
            )
        return result
    level_tracer = Tracer()
    result = context.executor.run(plan, tracer=level_tracer, **kwargs)
    tracer.merge(level_tracer)
    traces.append(
        LevelTrace(
            label=label,
            spans=level_tracer.snapshot()["spans"],
            stats=result.stats,
            operators=tuple(result.operators or ()),
        )
    )
    if HUB.active:
        HUB.emit(
            "level_executed",
            {"label": label, "stats": result.stats.as_dict()},
        )
    return result


def combined_level_cutoff(schedule, reached_level, contains_count):
    """The §5.1 pruning rule for the combined scheme.

    Once levels ``0..reached_level`` hold at least K answers, any further
    level whose structural score is more than ``m`` (the number of contains
    predicates, each of weight 1) below that of ``reached_level`` cannot
    contribute a top-K answer. Returns the last level worth evaluating.
    """
    reached_score = schedule.structural_score(reached_level)
    cutoff = reached_level
    for index in range(reached_level + 1, len(schedule) + 1):
        if schedule.structural_score(index) <= reached_score - contains_count:
            break
        cutoff = index
    return cutoff
