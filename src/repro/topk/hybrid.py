"""Hybrid — bucketized single-plan evaluation (§5.2.3, Algorithm 2).

Hybrid combines DPO's and SSO's strengths: like SSO it evaluates a single
plan encoding the statically chosen relaxations (no repeated passes over
the data); like DPO it never sorts intermediate results on score. Instead,
intermediate tuples are grouped into *buckets* keyed by the set of
predicates they satisfy — all tuples in a bucket share a structural score,
and within a bucket the node-id sort order of the join inputs is preserved,
so neither resorting on score nor on node id is ever needed. Threshold /
``maxScoreGrowth`` pruning applies at bucket granularity.

Operationally Hybrid is SSO with the executor's bucket mode; it inherits
SSO's selectivity-driven level choice, its restart-on-underestimate loop,
and its stateless compile/execute split (immutable
:class:`~repro.compiled.CompiledQuery` in, per-query
:class:`~repro.topk.base.ExecutionSession` through).
"""

from __future__ import annotations

from repro.plans.executor import HYBRID_MODE
from repro.topk.sso import SSO


class Hybrid(SSO):
    """Bucketized variant of SSO — no intermediate sorting on scores."""

    name = "Hybrid"
    _mode = HYBRID_MODE
