"""DPO — Dynamic Penalty Order (§5.1.1).

DPO walks the relaxation schedule one level at a time, evaluating each
level's query with a strict plan (this is the algorithm designed to work
with off-the-shelf XPath and IR engines). After each level it counts the
accumulated distinct answers and stops as soon as K are available.

Properties reproduced from the paper:

- answers of a later level always score at or below answers of an earlier
  level, so DPO appends without re-sorting (structure-first scheme);
- the structural score of every answer of one level is known at compile
  time — the level's score from the schedule;
- recomputation across levels is avoided by remembering answer ids already
  produced (the paper's "vectors of answer lists").

For keyword-first ranking every level must be evaluated; for the combined
scheme the §5.1 cutoff limits how far past the K-th answer DPO walks.

The strategy object is stateless: ``top_k`` compiles (or fetches from the
plan cache) an immutable :class:`~repro.compiled.CompiledQuery` and runs
the level walk in :meth:`execute` against a per-query
:class:`~repro.topk.base.ExecutionSession` — one instance is safely
shared between threads.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER
from repro.plans.executor import STRICT
from repro.rank.schemes import STRUCTURE_FIRST, rank_answers
from repro.rank.scores import AnswerScore, ScoredAnswer
from repro.topk.base import (
    ExecutionSession,
    TopKResult,
    begin_topk_metrics,
    combined_level_cutoff,
    record_topk_metrics,
)


class DPO:
    """Dynamic Penalty Order top-K evaluation."""

    name = "DPO"

    def __init__(self, context):
        self._context = context

    def top_k(self, query, k, scheme=STRUCTURE_FIRST, max_relaxations=None,
              tracer=NULL_TRACER, control=None):
        """Return the top-K answers of ``query`` under ``scheme``."""
        context = self._context
        metrics_token = begin_topk_metrics(context)
        with tracer.span("compile"):
            compiled = context.compile(query, max_relaxations=max_relaxations)
        session = ExecutionSession(context, tracer=tracer, control=control)
        with tracer.span("execute"):
            result = self.execute(compiled, session, k, scheme)
        return record_topk_metrics(context, result, metrics_token)

    def execute(self, compiled, session, k, scheme=STRUCTURE_FIRST):
        """Run the DPO level walk over a compiled artifact (stateless)."""
        schedule = compiled.schedule
        contains_count = compiled.contains_count()

        cutoff = len(schedule)
        reached_level = None

        for level in range(len(schedule) + 1):
            if level > cutoff:
                break
            plan = compiled.strict_physical(level)
            # Answers of earlier levels are excluded inside the executor as
            # soon as the answer variable binds — the paper's §5.2.2 trick
            # for avoiding recomputation across successive relaxations.
            result = session.run_plan(
                plan,
                "level %d" % level,
                mode=STRICT,
                exclude_answer_ids=session.seen,
            )

            level_score = schedule.structural_score(level)
            fresh = []
            for answer in result.answers:
                if answer.node_id in session.seen:
                    continue
                session.seen.add(answer.node_id)
                fresh.append(
                    ScoredAnswer(
                        node=answer.node,
                        score=AnswerScore(level_score, answer.score.keyword),
                        relaxation_level=level,
                        satisfied=answer.satisfied,
                    )
                )
            # Within a level all structural scores are equal; order by the
            # scheme's secondary component so appending keeps global order.
            fresh.sort(key=lambda a: scheme.sort_key(a.score), reverse=True)
            session.collected.extend(fresh)

            if len(session.collected) >= k and reached_level is None:
                reached_level = level
                if scheme.requires_all_relaxations:
                    cutoff = len(schedule)
                elif scheme.keyword_headroom(contains_count) > 0:
                    cutoff = combined_level_cutoff(
                        schedule, reached_level, contains_count
                    )
                else:
                    cutoff = level  # structure-first: stop right here

        answers = rank_answers(session.collected, scheme, k)
        return TopKResult(
            algorithm=self.name,
            query=compiled.tpq,
            k=k,
            scheme=scheme,
            answers=answers,
            relaxations_used=session.levels_evaluated - 1,
            levels_evaluated=session.levels_evaluated,
            stats=session.stats,
            traces=session.traces,
        )
