"""Quickstart: flexible structure + full-text querying in five minutes.

Builds a tiny article collection, issues the paper's running query, and
shows how FleXPath relaxes it when strict XPath semantics would starve the
result list.

Run:  python examples/quickstart.py
"""

from repro import FleXPath

XML = """
<library>
 <article>
  <title>Streaming XML</title>
  <section>
   <title>Evaluation</title>
   <algorithm>procedure one</algorithm>
   <paragraph>Algorithms for streaming XML data processing.</paragraph>
  </section>
 </article>
 <article>
  <section>
   <title>XML streaming survey</title>
   <paragraph>General overview of engines.</paragraph>
   <subsection><algorithm>procedure two</algorithm></subsection>
  </section>
 </article>
 <article>
  <abstract>We study streaming XML algorithms.</abstract>
  <section><paragraph>Nothing about the topic here.</paragraph></section>
 </article>
</library>
"""

QUERY = (
    '//article[.//algorithm and ./section[./paragraph'
    ' and .contains("XML" and "streaming")]]'
)


def main():
    engine = FleXPath.from_xml(XML)

    print("=== strict XPath semantics ===")
    strict = engine.exact(QUERY)
    print("exact matches: %d article(s)\n" % len(strict))

    print("=== the relaxation schedule FleXPath considers ===")
    print(engine.explain(QUERY, k=3))
    print()

    print("=== flexible top-3 (hybrid algorithm, structure-first) ===")
    result = engine.query(QUERY, k=3, algorithm="hybrid")
    for rank, answer in enumerate(result.answers, start=1):
        title = engine.document.descendants_with_tag(answer.node, "title")
        label = title[0].text if title else "(untitled)"
        print(
            "%d. node %-3d %-28s ss=%.3f ks=%.3f relaxations=%d"
            % (
                rank,
                answer.node_id,
                label[:28],
                answer.score.structural,
                answer.score.keyword,
                answer.relaxation_level,
            )
        )
    print(
        "\nStrict evaluation returned %d answer(s); FleXPath found %d, "
        "ranking the exact matches first." % (len(strict), len(result.answers))
    )


if __name__ == "__main__":
    main()
