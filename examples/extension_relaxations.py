"""The §3.4 extension relaxations: type hierarchies, value predicates,
thesauri.

The paper sets these relaxations aside as orthogonal to its structural
ones, but describes them precisely; this example exercises all three on a
small catalog:

- generalize ``article`` to ``publication`` via a type hierarchy,
- weaken ``@price <= 98`` to ``@price <= 100``,
- expand the keyword ``xml`` with thesaurus synonyms, and drop a conjunct.

Run:  python examples/extension_relaxations.py
"""

from repro import parse_query
from repro.query import evaluate
from repro.relax import (
    Thesaurus,
    TypeHierarchy,
    drop_keyword,
    expand_keyword,
    hierarchy_tag_matcher,
    tag_generalization,
    weaken_value_predicate,
)
from repro.xmltree import parse

CATALOG = """
<catalog>
 <article price="95"><body>a study of xml streams</body></article>
 <article price="99"><body>xml markup languages compared</body></article>
 <book price="60"><body>the sgml handbook</body></book>
 <memo price="5"><body>lunch order</body></memo>
</catalog>
"""


def show(label, nodes):
    print("%-46s -> %d match(es): %s" % (
        label, len(nodes), ", ".join(n.tag for n in nodes) or "none"
    ))


def main():
    doc = parse(CATALOG)
    hierarchy = TypeHierarchy({"article": "publication", "book": "publication"})
    matcher = hierarchy_tag_matcher(hierarchy)

    print("=== tag generalization (article -> publication) ===")
    strict = parse_query('//article[.contains("xml" or "sgml" or "markup")]')
    show("strict //article[...]", evaluate(strict, doc, tag_matcher=matcher))
    general = tag_generalization(strict, "$1", hierarchy)
    show(
        "relaxed //publication[...]",
        evaluate(general, doc, tag_matcher=matcher),
    )

    print("\n=== value-predicate weakening (price <= 98 -> <= 100) ===")
    priced = parse_query("//article[@price <= 98]")
    show("strict price <= 98", evaluate(priced, doc))
    weakened = weaken_value_predicate(priced, priced.attr_predicates[0], 100)
    show("weakened price <= 100", evaluate(weakened, doc))

    print("\n=== thesaurus expansion (xml -> xml|sgml|markup) ===")
    keyword = parse_query('//*[./body and .contains("xml")]')
    show("strict contains(xml)", evaluate(keyword, doc))
    thesaurus = Thesaurus({"xml": ("sgml", "markup")})
    expanded = expand_keyword(keyword, keyword.contains[0], "xml", thesaurus)
    show("expanded synonyms", evaluate(expanded, doc))

    print("\n=== dropping a conjunct (xml and streams -> xml) ===")
    conjunctive = parse_query('//article[.contains("xml" and "streams")]')
    show("strict xml and streams", evaluate(conjunctive, doc))
    dropped = drop_keyword(conjunctive, conjunctive.contains[0], "streams")
    show("dropped 'streams'", evaluate(dropped, doc))

    print(
        "\nEach relaxation strictly widened its answer set — the containment"
        "\nproperty that makes these valid relaxations in the §3 sense."
    )


if __name__ == "__main__":
    main()
