"""The paper's §1 scenario: searching a bibliographic collection.

Generates the archetype article corpus (exact matches, keywords only in a
section title, algorithm split from the keyword section, abstract-only,
off-topic), then shows how each query of Figure 1 — and FleXPath's
automatic relaxation — recovers progressively more of the relevant
articles while never surfacing the off-topic ones above them.

Run:  python examples/article_search.py
"""

from repro import FleXPath
from repro.datasets import FIGURE1_QUERIES, article_corpus


def archetype(node):
    return node.attributes["id"].rsplit("-", 1)[0]


def main():
    corpus = article_corpus(articles=25, seed=11)
    engine = FleXPath(corpus)

    print("corpus: %d articles, 5 archetypes\n" % corpus.count("article"))

    print("=== Figure 1: what each hand-written query catches ===")
    for name in ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6"):
        nodes = engine.exact(FIGURE1_QUERIES[name])
        kinds = sorted({archetype(n) for n in nodes})
        print("%-3s %2d articles  %s" % (name, len(nodes), ", ".join(kinds)))

    print(
        "\nWriting Q2..Q6 by hand is the 'naive solution' the paper rejects;"
        "\nFleXPath derives them automatically from Q1:\n"
    )

    print("=== FleXPath: relax Q1 automatically (top-12, structure-first) ===")
    result = engine.query(FIGURE1_QUERIES["Q1"], k=12, algorithm="hybrid")
    for rank, answer in enumerate(result.answers, start=1):
        print(
            "%2d. %-16s ss=%.3f ks=%.3f" % (
                rank,
                archetype(answer.node),
                answer.score.structural,
                answer.score.keyword,
            )
        )

    kinds = [archetype(a.node) for a in result.answers]
    assert "off-topic" not in kinds[: kinds.count("exact")]
    print(
        "\nExact matches rank first; articles needing relaxation follow with"
        "\nlower structural scores; off-topic articles only appear, if at"
        "\nall, once every relevant archetype is exhausted."
    )

    print("\n=== keyword-first ranking of the same query ===")
    result = engine.query(
        FIGURE1_QUERIES["Q1"], k=5, scheme="keyword-first", algorithm="hybrid"
    )
    for rank, answer in enumerate(result.answers, start=1):
        print(
            "%2d. %-16s ks=%.3f ss=%.3f"
            % (
                rank,
                archetype(answer.node),
                answer.score.keyword,
                answer.score.structural,
            )
        )


if __name__ == "__main__":
    main()
