"""Top-K over XMark auction data with all three algorithms (§6 setting).

Generates an XMark-like document, runs the paper's evaluation queries
Q1-Q3 with DPO, SSO and Hybrid, and prints timings plus the relaxation
levels each algorithm needed — a miniature of the paper's experiments.

Run:  python examples/auction_topk.py
"""

import time

from repro import FleXPath
from repro.xmark import PAPER_QUERIES, generate_document


def main():
    print("generating ~300 KB of XMark auction data ...")
    document = generate_document(target_bytes=300_000, seed=42)
    print("document: %(nodes)d elements, depth %(depth)d" % document.stats_summary())

    build_start = time.perf_counter()
    engine = FleXPath(document)
    print(
        "engine (index + statistics): %.2f s\n"
        % (time.perf_counter() - build_start)
    )

    k = 50
    print("top-%d per query and algorithm (structure-first):\n" % k)
    print(
        "%-4s %-8s %8s %9s %7s %7s"
        % ("", "", "answers", "relax", "plans", "time")
    )
    for name, query_text in PAPER_QUERIES.items():
        exact = len(engine.exact(query_text))
        print("%s  (exact matches: %d)" % (name, exact))
        for algorithm in ("dpo", "sso", "hybrid"):
            start = time.perf_counter()
            result = engine.query(query_text, k=k, algorithm=algorithm)
            elapsed = time.perf_counter() - start
            print(
                "%-4s %-8s %8d %9d %7d %6.2fs"
                % (
                    "",
                    algorithm,
                    len(result.answers),
                    result.relaxations_used,
                    result.levels_evaluated,
                    elapsed,
                )
            )
        print()

    print("=== score profile of Q2's top answers (hybrid) ===")
    result = engine.query(PAPER_QUERIES["Q2"], k=k, algorithm="hybrid")
    by_score = {}
    for answer in result.answers:
        by_score.setdefault(round(answer.score.structural, 3), 0)
        by_score[round(answer.score.structural, 3)] += 1
    for score in sorted(by_score, reverse=True):
        print("  structural score %6.3f : %3d answers" % (score, by_score[score]))
    print(
        "\nAnswers at the top satisfy every structural predicate; each lower"
        "\nband gave up one more predicate, paying its penalty (§4.3)."
    )


if __name__ == "__main__":
    main()
