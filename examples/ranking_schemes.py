"""The three ranking schemes of §4.3 side by side.

The same relaxable query is evaluated under structure-first, keyword-first,
and combined ranking; the orderings disagree exactly where the paper says
they should: keyword-first surfaces keyword-rich answers with weak
structure, structure-first never lets keyword scores overturn structure,
and combined trades them off additively.

Run:  python examples/ranking_schemes.py
"""

from repro import FleXPath
from repro.xmark import generate_document

QUERY = '//item[./mailbox/mail/text[.contains("vintage" or "treasure")]]'


def show(engine, scheme, k=8):
    result = engine.query(QUERY, k=k, scheme=scheme, algorithm="hybrid")
    print("=== %s ===" % scheme)
    print("relaxation levels encoded: %d" % result.relaxations_used)
    for rank, answer in enumerate(result.answers, start=1):
        print(
            "%2d. item node %-5d ss=%6.3f  ks=%5.3f  ss+ks=%6.3f"
            % (
                rank,
                answer.node_id,
                answer.score.structural,
                answer.score.keyword,
                answer.score.combined(),
            )
        )
    print()
    return result


def main():
    document = generate_document(target_bytes=150_000, seed=13)
    engine = FleXPath(document)

    structure = show(engine, "structure-first")
    keyword = show(engine, "keyword-first")
    combined = show(engine, "combined")

    structure_ids = [a.node_id for a in structure.answers]
    keyword_ids = [a.node_id for a in keyword.answers]
    if structure_ids != keyword_ids:
        print(
            "structure-first and keyword-first disagree on the ordering —\n"
            "keyword-first had to encode every relaxation (%d levels) because\n"
            "a structurally poor answer can still win on keywords (§5.1)."
            % keyword.relaxations_used
        )
    ss = [a.score.structural for a in structure.answers]
    assert ss == sorted(ss, reverse=True)
    ks = [a.score.keyword for a in keyword.answers]
    assert ks == sorted(ks, reverse=True)
    total = [a.score.combined() for a in combined.answers]
    assert total == sorted(total, reverse=True)
    print("each scheme's own ordering verified monotone.")


if __name__ == "__main__":
    main()
