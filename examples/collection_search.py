"""Searching a multi-document collection with quality measurement.

Combines several bibliographic documents under one virtual root
(the paper's "data tree, i.e., an XML document collection"), runs a
flexible query across all of them, attributes each answer back to its
source file, highlights the matched keywords, and quantifies the
strict-vs-flexible recall gap with standard IR metrics.

Run:  python examples/collection_search.py
"""

from repro import FleXPath
from repro.collection import DocumentCollection
from repro.ir import parse_ftexpr
from repro.ir.highlight import snippet
from repro.quality import compare_strict_vs_flexible

DOCUMENTS = {
    "proceedings-2003.xml": """
<proceedings year="2003">
 <article><title>Streaming XML engines</title>
  <section><algorithm>alg</algorithm>
   <paragraph>We evaluate XML streaming workloads end to end.</paragraph>
  </section>
 </article>
 <article><title>Cache design</title>
  <section><paragraph>Buffer pools and eviction policies.</paragraph></section>
 </article>
</proceedings>
""",
    "proceedings-2004.xml": """
<proceedings year="2004">
 <article><title>XML streaming in practice</title>
  <section><title>XML streaming deployment notes</title>
   <algorithm>alg</algorithm>
   <paragraph>Operational experience report.</paragraph>
  </section>
 </article>
</proceedings>
""",
    "tech-reports.xml": """
<reports>
 <article><abstract>A survey of streaming XML processing.</abstract>
  <section><paragraph>No algorithms inside.</paragraph></section>
 </article>
</reports>
""",
}

QUERY = (
    '//article[.//algorithm and ./section[./paragraph'
    ' and .contains("XML" and "streaming")]]'
)


def main():
    collection = DocumentCollection.from_texts(
        list(DOCUMENTS.values()), names=list(DOCUMENTS.keys())
    )
    engine = FleXPath(collection.document)
    expression = parse_ftexpr('"XML" and "streaming"')

    print("collection: %d documents, %d elements\n" % (
        len(collection), len(collection.document)
    ))

    print("=== flexible top-4 across the whole collection ===")
    result = engine.query(QUERY, k=4)
    for rank, answer in enumerate(result.answers, start=1):
        source = collection.source_of(answer.node)
        text = engine.document.full_text(answer.node)
        print("%d. [%s]  ss=%.2f ks=%.2f" % (
            rank, source, answer.score.structural, answer.score.keyword
        ))
        print("   %s" % snippet(text, expression, width=64))
    print()

    # Ground truth: every article mentioning both keywords anywhere.
    relevant = {
        node.node_id
        for node in collection.document.nodes_with_tag("article")
        if engine.context.ir.satisfies(node, expression)
    }
    report = compare_strict_vs_flexible(engine, QUERY, relevant, k=len(relevant))
    print("=== strict vs flexible against ground truth (%d relevant) ===" % (
        len(relevant)
    ))
    for mode in ("strict", "flexible"):
        row = report[mode]
        print(
            "%-9s precision=%.2f recall=%.2f f1=%.2f (returned %d)"
            % (mode, row["precision"], row["recall"], row["f1"], row["returned"])
        )
    assert report["flexible"]["recall"] >= report["strict"]["recall"]
    print(
        "\nThe strict query misses the title-keywords and abstract-only"
        "\narticles; relaxation recovers them while keeping exact matches"
        "\non top."
    )


if __name__ == "__main__":
    main()
