"""Ablation — the value of selectivity estimation in SSO (§6).

Three estimator behaviours:

- "uniform": the paper's uniform-independence estimator (the default);
- "encode-all": always claims zero answers, so SSO encodes every
  relaxation up front — this is the strategy of [3] the paper contrasts
  with ("all possible relaxations are initially encoded ... resulting in
  large intermediate query results");
- "optimistic": always claims plenty, forcing restart loops (Algorithm 1
  lines 11-13).

Expected: uniform ≤ encode-all; optimistic pays one extra plan run per
restart.
"""

import pytest

from benchmarks.harness import context_for, run_topk, warm

SIZE = "10MB"
QUERY = "Q2"
K = 40


class _EncodeAll:
    def estimate(self, query):
        return 0.0


class _Optimistic:
    def estimate(self, query):
        return 1_000_000.0


ESTIMATORS = {
    "uniform": None,
    "encode-all": _EncodeAll(),
    "optimistic": _Optimistic(),
}


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE)
    warm(ctx, QUERY)
    return ctx


@pytest.mark.parametrize("estimator_name", list(ESTIMATORS))
def test_ablation_estimator(benchmark, context, estimator_name):
    replacement = ESTIMATORS[estimator_name]
    original = context.estimator

    def run():
        if replacement is not None:
            context.estimator = replacement
        try:
            return run_topk(context, "sso", QUERY, K)
        finally:
            context.estimator = original

    result = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["restarts"] = result.restarts
