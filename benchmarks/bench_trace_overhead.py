"""Tracing-layer overhead: what does observability cost?

Not a paper figure. The observability layer promises *zero overhead when
off*: every component holds the null tracer by default, hot per-tuple
counters are gated on ``tracer.enabled``, and per-phase spans add a handful
of context-manager entries per plan execution. This module keeps that
promise honest:

- ``test_trace_off_*`` times the normal (untraced) query path — the same
  call every figure benchmark times — and embeds one traced run's
  per-phase aggregates and counters in ``extra_info``, so the JSON
  artifact carries the cost decomposition for free.
- ``test_trace_on_vs_off`` measures both paths back to back and records
  their ratio; the traced path is expected to cost more (it is never
  timed by the figure benchmarks), the untraced path is the product.

The CI smoke job asserts the ``phases`` and ``counters`` keys exist in the
uploaded benchmark JSON.
"""

import os
from time import perf_counter

import pytest

from benchmarks.harness import (
    attach_phase_info,
    context_for,
    run_topk,
    run_topk_traced,
    warm,
)

#: Overridable so CI smoke runs can use a small document.
SIZE = os.environ.get("FLEXPATH_BENCH_SIZE", "10MB")
QUERY = "Q2"
K = 10


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE, seed=42)
    warm(ctx, QUERY)
    return ctx


@pytest.mark.parametrize("algorithm", ["dpo", "sso", "hybrid"])
def test_trace_off_query(benchmark, context, algorithm):
    """The untraced path every figure benchmark times, with one traced
    run's phase aggregates embedded in the JSON artifact."""
    result = benchmark(run_topk, context, algorithm, QUERY, K)
    assert result.answers
    trace = attach_phase_info(benchmark, context, algorithm, QUERY, K)
    assert trace.phase_aggregates()


def test_trace_on_vs_off(benchmark, context):
    """Measure the traced path and record its cost relative to untraced.

    The ratio lands in ``extra_info`` (not an assertion — CI timing noise
    would make a hard threshold flaky); EXPERIMENTS.md records typical
    values.
    """
    rounds = 30
    run_topk(context, "hybrid", QUERY, K)  # warm
    started = perf_counter()
    for _ in range(rounds):
        run_topk(context, "hybrid", QUERY, K)
    off_seconds = (perf_counter() - started) / rounds

    trace = benchmark(run_topk_traced, context, "hybrid", QUERY, K)
    on_seconds = trace.total_seconds

    benchmark.extra_info["trace_off_seconds"] = off_seconds
    benchmark.extra_info["trace_on_seconds"] = on_seconds
    benchmark.extra_info["trace_on_over_off"] = (
        on_seconds / off_seconds if off_seconds > 0 else 0.0
    )
    benchmark.extra_info["phases"] = trace.phase_aggregates()
    benchmark.extra_info["counters"] = trace.counter_totals()
