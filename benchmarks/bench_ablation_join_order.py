"""Ablation — pattern pre-order vs selectivity-ordered joins.

The paper fixes the join order to pattern pre-order; this ablation measures
what a statistics-driven reorder (most selective tag first, dependencies
respected) buys on the fully relaxed Q3 plan.
"""

import pytest

from benchmarks.harness import context_for, query, warm
from repro.plans import SSO_MODE, build_encoded_plan
from repro.plans.ordering import selectivity_ordered
from repro.rank import STRUCTURE_FIRST

SIZE = "10MB"
QUERY = "Q3"
K = 50


@pytest.fixture(scope="module")
def setup():
    context = context_for(SIZE)
    warm(context, QUERY)
    schedule = context.schedule(query(QUERY))
    plan = build_encoded_plan(schedule, len(schedule))
    reordered = selectivity_ordered(plan, context.statistics)
    return context, {"preorder": plan, "selectivity": reordered}


@pytest.mark.parametrize("ordering", ["preorder", "selectivity"])
def test_ablation_join_order(benchmark, setup, ordering):
    context, plans = setup
    plan = plans[ordering]

    def run():
        return context.executor.run(
            plan, k=K, scheme=STRUCTURE_FIRST, mode=SSO_MODE
        )

    result = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    benchmark.extra_info["max_intermediate"] = result.stats.max_intermediate
    benchmark.extra_info["tuples"] = result.stats.tuples_produced
