"""Benchmark regression gate: compare a run against a committed baseline.

The bench trajectory only means something if someone reads it. This gate
makes CI read it: ``BENCH_baseline.json`` (committed at the repo root)
snapshots the median times of the smoke benchmarks, and every CI run
compares its fresh ``--benchmark-json`` output against that snapshot::

    # refresh the baseline (after a PR that legitimately shifts performance)
    python -m pytest benchmarks/bench_micro_substrates.py ... \
        --benchmark-json=bench-smoke.json
    python benchmarks/regress.py bench-smoke.json --update

    # gate a run (exit 1 on any >25% median regression)
    python benchmarks/regress.py bench-smoke.json

Noise handling:

- ``--tolerance`` (default 0.25) — a benchmark regresses only when its
  median exceeds baseline × (1 + tolerance);
- ``--min-time`` (default 100 µs) — benchmarks whose medians are both
  below this floor are reported but never fail the gate (sub-100 µs
  medians are dominated by timer jitter);
- ``--normalize`` — divide every current median by the geometric-mean
  speed ratio of the whole run before comparing, so a uniformly slower
  machine (CI runner vs the laptop that wrote the baseline) does not fail
  every benchmark at once.  A *global* slowdown is invisible under
  normalization, so local runs gating their own baseline should omit it.

Exit codes: 0 ok, 1 regression(s), 2 usage/baseline problems.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = ROOT / "BENCH_baseline.json"


def load_benchmark_medians(path):
    """``{fullname: median_seconds}`` from a pytest-benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    medians = {}
    for bench in data.get("benchmarks", []):
        medians[bench["fullname"]] = bench["stats"]["median"]
    return medians


def load_baseline(path):
    """The committed baseline: ``(medians, meta)``."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    medians = {
        name: entry["median"] for name, entry in data["benchmarks"].items()
    }
    return medians, data.get("meta", {})


def write_baseline(current_path, baseline_path):
    """Snapshot a ``--benchmark-json`` file into the baseline format."""
    with open(current_path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    benchmarks = {}
    for bench in data.get("benchmarks", []):
        stats = bench["stats"]
        benchmarks[bench["fullname"]] = {
            "median": stats["median"],
            "mean": stats["mean"],
            "stddev": stats["stddev"],
            "rounds": stats["rounds"],
        }
    if not benchmarks:
        raise SystemExit("no benchmarks in %s; refusing to write an empty"
                         " baseline" % current_path)
    payload = {
        "meta": {
            "source": str(current_path),
            "datetime": data.get("datetime"),
            "python": data.get("machine_info", {}).get("python_version"),
            "cpu": data.get("machine_info", {}).get("cpu", {}).get("brand_raw")
            if isinstance(data.get("machine_info", {}).get("cpu"), dict)
            else None,
            "note": "refresh with: python benchmarks/regress.py <run.json>"
            " --update",
        },
        "benchmarks": benchmarks,
    }
    with open(baseline_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(benchmarks)


def speed_factor(baseline, current):
    """Geometric-mean ratio current/baseline over the common benchmarks.

    The machine-speed estimate ``--normalize`` divides by: > 1 means the
    current run is uniformly slower than the machine that wrote the
    baseline.
    """
    ratios = []
    for name, base_median in baseline.items():
        median = current.get(name)
        if median and base_median > 0:
            ratios.append(median / base_median)
    if not ratios:
        return 1.0
    return math.exp(sum(math.log(ratio) for ratio in ratios) / len(ratios))


def compare(baseline, current, tolerance=0.25, min_time=1e-4, factor=1.0):
    """Classify every baseline benchmark against the current run.

    Returns a dict with ``regressions``, ``improvements``, ``ok``,
    ``too_fast_to_judge`` (below the noise floor), ``missing`` (in the
    baseline but not the run) and ``new`` (in the run but not the
    baseline).  Each comparison entry is ``(name, base_median,
    adjusted_median, ratio)``.
    """
    report = {
        "regressions": [],
        "improvements": [],
        "ok": [],
        "too_fast_to_judge": [],
        "missing": [],
        "new": sorted(set(current) - set(baseline)),
    }
    for name, base_median in sorted(baseline.items()):
        median = current.get(name)
        if median is None:
            report["missing"].append(name)
            continue
        adjusted = median / factor
        ratio = adjusted / base_median if base_median > 0 else float("inf")
        entry = (name, base_median, adjusted, ratio)
        if adjusted < min_time and base_median < min_time:
            report["too_fast_to_judge"].append(entry)
        elif ratio > 1.0 + tolerance:
            report["regressions"].append(entry)
        elif ratio < 1.0 / (1.0 + tolerance):
            report["improvements"].append(entry)
        else:
            report["ok"].append(entry)
    return report


def _print_entries(label, entries, out):
    print(label, file=out)
    for name, base_median, adjusted, ratio in entries:
        print(
            "  %-72s %10.3f ms -> %10.3f ms  (%.2fx)"
            % (name, base_median * 1e3, adjusted * 1e3, ratio),
            file=out,
        )


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="regress",
        description="compare a pytest-benchmark JSON run against the"
        " committed baseline",
    )
    parser.add_argument("current", help="--benchmark-json output to check")
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="baseline file (default: BENCH_baseline.json at the repo root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed median growth before failing (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--min-time", type=float, default=1e-4, metavar="SECONDS",
        help="noise floor: medians below this never fail (default 1e-4)",
    )
    parser.add_argument(
        "--normalize", action="store_true",
        help="divide out the run's geometric-mean speed ratio first"
        " (for comparisons across machines)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the baseline from this run instead of comparing",
    )
    args = parser.parse_args(argv)

    if args.update:
        count = write_baseline(args.current, args.baseline)
        print(
            "wrote %d benchmark(s) to %s" % (count, args.baseline), file=out
        )
        return 0

    try:
        baseline, meta = load_baseline(args.baseline)
    except FileNotFoundError:
        print(
            "error: no baseline at %s (create one with --update)"
            % args.baseline,
            file=sys.stderr,
        )
        return 2
    current = load_benchmark_medians(args.current)
    factor = speed_factor(baseline, current) if args.normalize else 1.0

    report = compare(
        baseline, current,
        tolerance=args.tolerance, min_time=args.min_time, factor=factor,
    )
    print(
        "baseline: %s (%d benchmark(s)%s)"
        % (
            args.baseline,
            len(baseline),
            ", " + meta["datetime"] if meta.get("datetime") else "",
        ),
        file=out,
    )
    if args.normalize:
        print("machine speed factor: %.3fx (normalized out)" % factor, file=out)
    if report["regressions"]:
        _print_entries("REGRESSIONS (>%.0f%%):" % (args.tolerance * 100),
                       report["regressions"], out)
    if report["improvements"]:
        _print_entries("improvements:", report["improvements"], out)
    if report["too_fast_to_judge"]:
        _print_entries(
            "below the %.1f µs noise floor (not gated):"
            % (args.min_time * 1e6),
            report["too_fast_to_judge"], out,
        )
    if report["missing"]:
        print(
            "missing from this run: %s" % ", ".join(report["missing"]),
            file=out,
        )
    if report["new"]:
        print(
            "new (not in baseline): %s" % ", ".join(report["new"]), file=out
        )
    print(
        "%d ok, %d regressed, %d improved, %d below floor"
        % (
            len(report["ok"]),
            len(report["regressions"]),
            len(report["improvements"]),
            len(report["too_fast_to_judge"]),
        ),
        file=out,
    )
    return 1 if report["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
