"""Session-pool benchmarks: checkout overhead, and the acceptance gate.

Not a paper figure. The Engine/Session/Backend split routes every query
through ``Engine.connect()`` — a pool checkout, the query, a checkin.
That indirection must stay invisible next to the work it wraps, so these
benchmarks keep it honest:

- ``test_checkout_checkin`` times a bare checkout/checkin round trip on a
  warm pool (one lock acquisition and a list pop/append each way);
- ``test_query_through_session`` times a full pooled query — the serving
  path production code takes;
- ``test_checkout_under_5pct_of_query_time`` is the plain (non-benchmark)
  assertion CI relies on: median checkout+checkin overhead must stay
  below 5% of the median query time on the same engine.
"""

import os
import statistics
from time import perf_counter

from benchmarks.harness import document_for
from repro.engine import Engine
from repro.xmark import PAPER_QUERIES

#: Overridable so CI smoke runs can use a small document.
SIZE = os.environ.get("FLEXPATH_BENCH_SIZE", "10MB")
QUERY = PAPER_QUERIES["Q2"]

_engines = {}


def _engine():
    if SIZE not in _engines:
        # cache=False so the gate compares checkout overhead against real
        # evaluation work, not against result-cache dict probes.
        _engines[SIZE] = Engine(document_for(SIZE, seed=42), cache=False)
    return _engines[SIZE]


def test_checkout_checkin(benchmark):
    """Bare pool round trip: lock + list pop, lock + list append."""
    engine = _engine()
    engine.connect().close()  # warm the pool

    def round_trip():
        engine.connect().close()

    benchmark(round_trip)
    assert engine.pool.info()["in_use"] == 0


def test_query_through_session(benchmark):
    """The full pooled serving path: checkout, query, checkin."""
    engine = _engine()

    def serve():
        with engine.connect() as session:
            return session.query(QUERY, k=5)

    result = benchmark(serve)
    assert result.answers


def test_checkout_under_5pct_of_query_time():
    """Acceptance gate: pool overhead < 5% of median query time."""
    engine = _engine()
    engine.connect().close()  # warm the pool
    rounds = 30

    checkout_times = []
    for _ in range(rounds):
        started = perf_counter()
        engine.connect().close()
        checkout_times.append(perf_counter() - started)

    query_times = []
    for _ in range(rounds):
        with engine.connect() as session:
            started = perf_counter()
            session.query(QUERY, k=5)
            query_times.append(perf_counter() - started)

    checkout = statistics.median(checkout_times)
    query = statistics.median(query_times)
    assert checkout * 20 <= query, (
        "pool checkout %.6fs is not under 5%% of query time %.6fs"
        % (checkout, query)
    )
