"""Figure 16 — SSO vs Hybrid as K grows, large document.

Paper setup: query Q3, 100 MB document, varying K. Expected shape: same
as Figure 15 but with bigger absolute gaps — larger documents mean larger
intermediate result sets for SSO to keep sorted on score.

Scaled here to the 1.6 MB document with K from 2 to 240 (K=2 sits below the exact-answer count, reproducing the paper's left-end parity).
"""

import pytest

from benchmarks.harness import context_for, run_topk, warm

SIZE = "100MB"
QUERY = "Q3"
K_SERIES = [2, 20, 60, 120, 240]


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE)
    warm(ctx, QUERY)
    return ctx


@pytest.mark.parametrize("k", K_SERIES)
@pytest.mark.parametrize("algorithm", ["sso", "hybrid"])
def test_fig16(benchmark, context, algorithm, k):
    result = benchmark.pedantic(
        run_topk,
        args=(context, algorithm, QUERY, k),
        rounds=3,
        warmup_rounds=1,
    )
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["answers"] = len(result.answers)
