"""Figure 15 — SSO vs Hybrid as K grows, mid-size document.

Paper setup: query Q3, 10 MB document, varying K. Expected shape: SSO is
more sensitive to K than Hybrid (the size of the intermediate answers SSO
re-sorts depends on K), so the gap widens with K even on smaller data.

Scaled here to the 400 KB document with K from 2 to 240 (K=2 sits below the exact-answer count, reproducing the paper's left-end parity).
"""

import pytest

from benchmarks.harness import context_for, run_topk, warm

SIZE = "10MB"
QUERY = "Q3"
K_SERIES = [2, 20, 60, 120, 240]


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE)
    warm(ctx, QUERY)
    return ctx


@pytest.mark.parametrize("k", K_SERIES)
@pytest.mark.parametrize("algorithm", ["sso", "hybrid"])
def test_fig15(benchmark, context, algorithm, k):
    result = benchmark.pedantic(
        run_topk,
        args=(context, algorithm, QUERY, k),
        rounds=3,
        warmup_rounds=1,
    )
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["answers"] = len(result.answers)
