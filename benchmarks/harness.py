"""Shared machinery for the figure-reproduction benchmarks.

Scaling
-------
The paper ran C/Java engines on a 2 GHz P4 over 1-100 MB XMark documents.
Pure Python is roughly two orders of magnitude slower, so every document
size is scaled by ~0.1× (the *shape* of each figure — who wins and how the
gap moves with K, document size, and relaxation count — is what the
reproduction preserves, not absolute milliseconds):

    paper "1 MB"   -> 100 KB   (~75 items)
    paper "10 MB"  -> 400 KB   (~330 items)
    paper "25 MB"  -> 800 KB   (~650 items)
    paper "50 MB"  -> 1.2 MB   (~1000 items)
    paper "100 MB" -> 1.6 MB   (~1300 items)

K values scale likewise (paper 50-600 on ~2200 items ≈ ours 20-240 on
~330 items). EXPERIMENTS.md records the mapping per figure.

Contexts (document + index + statistics) are built once per size and
shared across benchmarks; what is timed is query evaluation only, exactly
as in the paper.
"""

from __future__ import annotations

from time import perf_counter

from repro.obs.trace import build_query_trace
from repro.obs.tracer import Tracer
from repro.query import parse_query
from repro.topk import DPO, Hybrid, SSO, QueryContext
from repro.xmark import PAPER_QUERIES, generate_document

#: paper document size label -> scaled byte target
SIZES = {
    "1MB": 100_000,
    "10MB": 400_000,
    "25MB": 800_000,
    "50MB": 1_200_000,
    "100MB": 1_600_000,
}

#: The evaluation queries of §6.
QUERIES = dict(PAPER_QUERIES)

_ALGORITHMS = {"dpo": DPO, "sso": SSO, "hybrid": Hybrid}

_contexts = {}
_documents = {}
_queries = {}


def document_for(size_label, seed=42):
    """Build (once) and return the scaled document itself.

    Shared by benchmarks that exercise the storage layer directly (dump,
    load, corpus splice, footprint) without paying for index/statistics
    construction.
    """
    key = (size_label, seed)
    if key not in _documents:
        _documents[key] = generate_document(
            target_bytes=SIZES[size_label], seed=seed
        )
    return _documents[key]


def context_for(size_label, seed=42):
    """Build (once) and return the QueryContext for a scaled document."""
    key = (size_label, seed)
    if key not in _contexts:
        _contexts[key] = QueryContext(document_for(size_label, seed=seed))
    return _contexts[key]


def query(name_or_text):
    """Parse (once) a named paper query or a raw query string."""
    text = QUERIES.get(name_or_text, name_or_text)
    if text not in _queries:
        _queries[text] = parse_query(text)
    return _queries[text]


def run_topk(context, algorithm_name, query_name, k, scheme=None, **kwargs):
    """One top-K evaluation; the unit of work every figure times."""
    algorithm = _ALGORITHMS[algorithm_name](context)
    tpq = query(query_name)
    if scheme is None:
        return algorithm.top_k(tpq, k, **kwargs)
    return algorithm.top_k(tpq, k, scheme=scheme, **kwargs)


def run_topk_traced(context, algorithm_name, query_name, k, scheme=None,
                    **kwargs):
    """One traced top-K evaluation; returns a :class:`QueryTrace`.

    Used outside the timed rounds to attach per-phase aggregates to a
    benchmark's ``extra_info`` — tracing adds overhead, so never time this.
    """
    algorithm = _ALGORITHMS[algorithm_name](context)
    tpq = query(query_name)
    if scheme is not None:
        kwargs["scheme"] = scheme
    tracer = Tracer()
    context.attach_tracer(tracer)
    started = perf_counter()
    try:
        result = algorithm.top_k(tpq, k, tracer=tracer, **kwargs)
    finally:
        context.attach_tracer(None)
    return build_query_trace(result, tracer, perf_counter() - started)


def attach_phase_info(benchmark, context, algorithm_name, query_name, k,
                      scheme=None, **kwargs):
    """Embed one traced run's per-phase aggregates in the benchmark JSON.

    Adds ``extra_info["phases"]`` (pipeline-ordered ``{phase: {"seconds",
    "calls"}}``) and ``extra_info["counters"]`` (IR + executor totals) so
    ``--benchmark-json`` artifacts carry the cost decomposition alongside
    the timing.
    """
    trace = run_topk_traced(
        context, algorithm_name, query_name, k, scheme=scheme, **kwargs
    )
    benchmark.extra_info["phases"] = trace.phase_aggregates()
    benchmark.extra_info["counters"] = trace.counter_totals()
    return trace


def warm(context, query_name):
    """Warm the IR caches so timed rounds compare evaluation, not caching."""
    run_topk(context, "sso", query_name, 5)


def relaxation_count(context, query_name):
    """How many relaxations the schedule offers for a query on a context."""
    return len(context.schedule(query(query_name)))
