"""Twig-join ablation: holistic operator vs binary pipeline, static vs measured.

The holistic twig operator replaces the per-intermediate-tuple cost of the
binary pipeline with a constant number of linear stack merges over the
candidate pools, so a *branchy* descendant-heavy pattern — many matches
per branch under each item — is where it must earn its keep.  Caching is
off throughout: the timing loops re-run the identical plan, and any
eval-cache hit would measure the cache, not the operator.

Two CI gates ride on the medians:

- ``test_twig_speedup_gate`` — the holistic operator is ≥1.3× the binary
  pipeline's median on the branchy pattern;
- ``test_measured_not_slower_than_static`` — plans lowered through the
  warmed :class:`MeasuredCostModel` are never slower than the §6 static
  ordering (small tolerance for timer noise; the measured model must pay
  for its bookkeeping with at-least-as-good plans).
"""

import os
import statistics
from time import perf_counter

import pytest

from repro.ir import IREngine
from repro.plans import (
    STRICT,
    MeasuredCostModel,
    PlanExecutor,
    StaticCostModel,
    build_strict_plan,
    lower_plan,
)
from repro.plans.physical import BINARY, TWIG
from repro.query import parse_query
from repro.relax import UNIFORM_WEIGHTS
from repro.stats import DocumentStatistics

from benchmarks.harness import document_for

SIZE = os.environ.get("FLEXPATH_BENCH_SIZE", "10MB")

#: Branchy, descendant-heavy: four independent branches under each item,
#: each with several matches per item, so the binary pipeline materializes
#: (and projects away) a tuple per match while the twig operator merges
#: each pool once.
BRANCHY_QUERY = (
    "//item[.//listitem and .//text and .//mail and .//incategory]"
)

ROUNDS = 5


@pytest.fixture(scope="module")
def doc():
    return document_for(SIZE)


@pytest.fixture(scope="module")
def ir(doc):
    return IREngine(doc)


@pytest.fixture(scope="module")
def stats(doc):
    return DocumentStatistics(doc)


@pytest.fixture(scope="module")
def executor(doc, ir):
    return PlanExecutor(doc, ir)  # no eval cache: measure the operator


def _physical(stats, policy):
    plan = build_strict_plan(parse_query(BRANCHY_QUERY), UNIFORM_WEIGHTS)
    return lower_plan(plan, StaticCostModel(stats, operator_policy=policy))


@pytest.fixture(scope="module")
def twig_plan(stats):
    physical = _physical(stats, "twig")
    assert physical.operator == TWIG
    return physical


@pytest.fixture(scope="module")
def binary_plan(stats):
    physical = _physical(stats, "binary")
    assert physical.operator == BINARY
    return physical


def _median_seconds(executor, physical, rounds=ROUNDS):
    executor.run(physical, mode=STRICT)  # warm the IR postings
    samples = []
    for _ in range(rounds):
        start = perf_counter()
        executor.run(physical, mode=STRICT)
        samples.append(perf_counter() - start)
    return statistics.median(samples)


def test_twig_holistic_join(benchmark, executor, twig_plan):
    result = benchmark.pedantic(
        lambda: executor.run(twig_plan, mode=STRICT),
        rounds=ROUNDS,
        warmup_rounds=1,
    )
    assert result.answers
    benchmark.extra_info["operator"] = "twig"
    benchmark.extra_info["answers"] = len(result.answers)


def test_binary_pipeline(benchmark, executor, binary_plan):
    result = benchmark.pedantic(
        lambda: executor.run(binary_plan, mode=STRICT),
        rounds=ROUNDS,
        warmup_rounds=1,
    )
    assert result.answers
    benchmark.extra_info["operator"] = "binary"
    benchmark.extra_info["answers"] = len(result.answers)


def test_twig_speedup_gate(executor, twig_plan, binary_plan):
    """The issue's ablation gate: twig ≥1.3× the binary pipeline."""
    twig = _median_seconds(executor, twig_plan)
    binary = _median_seconds(executor, binary_plan)
    speedup = binary / twig
    assert speedup >= 1.3, (
        "holistic twig join only %.2fx faster than the binary pipeline"
        " (binary %.1fms, twig %.1fms)"
        % (speedup, binary * 1e3, twig * 1e3)
    )


def test_twig_answers_match_binary(executor, twig_plan, binary_plan):
    """The speedup is not bought with answers."""
    twig = executor.run(twig_plan, mode=STRICT)
    binary = executor.run(binary_plan, mode=STRICT)
    assert sorted(
        (a.node_id, round(a.score.structural, 9), round(a.score.keyword, 9))
        for a in twig.answers
    ) == sorted(
        (a.node_id, round(a.score.structural, 9), round(a.score.keyword, 9))
        for a in binary.answers
    )


def test_measured_not_slower_than_static(doc, ir, stats):
    """Feedback-driven lowering never loses to the §6 static ordering.

    The measured model is warmed on the workload itself (the executor
    records true pool sizes and fan-outs), refreshed so the observations
    take effect, and then re-lowers the plan.  Its median must stay
    within noise of the static model's — measured numbers can only
    improve the ordering and operator choice, never degrade them.
    """
    plan = build_strict_plan(parse_query(BRANCHY_QUERY), UNIFORM_WEIGHTS)
    static_physical = lower_plan(plan, StaticCostModel(stats))

    measured = MeasuredCostModel(stats)
    warm_executor = PlanExecutor(doc, ir, feedback=measured.feedback)
    for _ in range(3):
        warm_executor.run(lower_plan(plan, measured), mode=STRICT)
    measured.feedback.refresh()
    measured_physical = lower_plan(plan, measured)

    executor = PlanExecutor(doc, ir)
    static_median = _median_seconds(executor, static_physical)
    measured_median = _median_seconds(executor, measured_physical)
    assert measured_median <= static_median * 1.15, (
        "measured-cost plan %.1fms vs static %.1fms"
        % (measured_median * 1e3, static_median * 1e3)
    )
