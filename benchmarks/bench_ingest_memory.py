"""Ingest cost of the columnar store vs. the object-per-node model.

Two claims back the storage refactor, measured on a >10k-node XMark
document:

- loading a dump fills the columns directly and is several times faster
  than re-parsing the XML text;
- the node table itself is at least 2x smaller than an object-per-node
  model (``_LegacyNode`` below replicates the pre-columnar layout: one
  slotted Python object per node plus a per-node child-id list).

Run with ``pytest benchmarks/bench_ingest_memory.py`` like the other
benchmark modules; the assertions double as a regression gate.
"""

import os
import sys

import pytest

from repro.xmltree import dump_document, load_document, parse, to_xml
from repro.xmark import generate_document

#: Large enough for a stable measurement, small enough for CI smoke runs.
TARGET_BYTES = int(os.environ.get("FLEXPATH_INGEST_BYTES", 600_000))


class _LegacyNode:
    """The pre-columnar per-node object, reconstructed for comparison."""

    __slots__ = (
        "tag",
        "node_id",
        "start",
        "end",
        "level",
        "parent_id",
        "text",
        "attributes",
        "child_ids",
    )

    def __init__(self, node, child_ids):
        self.tag = node.tag
        self.node_id = node.node_id
        self.start = node.start
        self.end = node.end
        self.level = node.level
        self.parent_id = node.parent_id
        self.text = node.text
        self.attributes = dict(node.attributes) if node.attributes else None
        self.child_ids = child_ids


def _legacy_model(document):
    """Materialize the old object-per-node table (plus its tag index)."""
    nodes = [
        _LegacyNode(node, [child.node_id for child in document.children(node)])
        for node in document.nodes()
    ]
    tag_index = {}
    for node in nodes:
        tag_index.setdefault(node.tag, []).append(node.node_id)
    return nodes, tag_index


def _legacy_footprint(nodes, tag_index):
    """Deep size of the legacy node table, excluding text payload strings
    (shared with any storage model, so excluded on both sides)."""
    total = sys.getsizeof(nodes)
    for node in nodes:
        total += sys.getsizeof(node)
        total += sys.getsizeof(node.child_ids)
        total += sys.getsizeof(node.tag)
        if node.attributes is not None:
            total += sys.getsizeof(node.attributes)
            total += sum(
                sys.getsizeof(key) + sys.getsizeof(value)
                for key, value in node.attributes.items()
            )
    total += sys.getsizeof(tag_index)
    for tag, ids in tag_index.items():
        total += sys.getsizeof(ids)
    return total


@pytest.fixture(scope="module")
def document():
    doc = generate_document(target_bytes=TARGET_BYTES, seed=42)
    if TARGET_BYTES >= 600_000:
        assert len(doc) >= 10_000
    return doc


def test_ingest_load_dump_vs_parse(benchmark, document, tmp_path):
    """Loading the columnar dump is at least 2x faster than re-parsing."""
    import time

    xml_path = str(tmp_path / "doc.xml")
    dump_path = str(tmp_path / "doc.fxd")
    with open(xml_path, "w", encoding="utf-8") as handle:
        handle.write(to_xml(document))
    dump_document(document, dump_path)

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    def reparse():
        with open(xml_path, "r", encoding="utf-8") as handle:
            return parse(handle.read())

    parse_seconds = best_of(reparse)
    load_seconds = best_of(lambda: load_document(dump_path))

    loaded = benchmark.pedantic(
        load_document, args=(dump_path,), rounds=3, warmup_rounds=1
    )
    assert len(loaded) == len(document)
    benchmark.extra_info["nodes"] = len(loaded)
    benchmark.extra_info["parse_seconds"] = parse_seconds
    benchmark.extra_info["load_seconds"] = load_seconds
    benchmark.extra_info["speedup_vs_parse"] = parse_seconds / load_seconds
    assert load_seconds * 2 <= parse_seconds


def test_ingest_node_table_footprint(benchmark, document):
    """The columnar node table is at least 2x smaller than per-node objects."""
    nodes, tag_index = _legacy_model(document)
    legacy = _legacy_footprint(nodes, tag_index)
    columnar = benchmark(document.store.footprint_bytes)
    benchmark.extra_info["nodes"] = len(document)
    benchmark.extra_info["legacy_bytes"] = legacy
    benchmark.extra_info["columnar_bytes"] = columnar
    benchmark.extra_info["ratio"] = legacy / columnar
    assert columnar * 2 <= legacy


def test_ingest_corpus_append_is_linear(benchmark, document):
    """Appending a parsed fragment costs O(new nodes), not O(corpus)."""
    from repro.collection import Corpus

    corpus = Corpus()
    corpus.add_document(document)  # a large existing corpus ...
    fragment = parse("<article><title>appended</title></article>")

    def run():
        return corpus.add_document(fragment)

    node = benchmark(run)
    assert node.tag == "article"
    benchmark.extra_info["corpus_nodes"] = len(corpus.document)
