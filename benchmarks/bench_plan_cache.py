"""Plan-cache benchmarks: cold vs warm compile, and the acceptance gate.

Not a paper figure. The compile/execute split moved everything knowable
before execution — closure, core, the relaxation schedule, and *every*
per-level strict and encoded plan — into the immutable
:class:`~repro.compiled.CompiledQuery`, fronted by the bounded,
corpus-version-fenced :class:`~repro.compiled.PlanCache`. These
benchmarks keep that split honest:

- ``test_compile_cold`` times a full compile (closure + minimize +
  schedule + all plan builds) with the plan cache bypassed;
- ``test_compile_warm`` times the same request through the cache — a
  dict probe returning the shared artifact;
- ``test_warm_compile_at_least_5x_faster`` is the plain (non-benchmark)
  assertion CI relies on: a warm hit must skip parse/closure/schedule/
  plan-build work and come back >= 5x faster than a cold compile.
"""

import os
from time import perf_counter

from benchmarks.harness import context_for, query
from repro.compiled import compile_query

#: Overridable so CI smoke runs can use a small document.
SIZE = os.environ.get("FLEXPATH_BENCH_SIZE", "10MB")
QUERY = "Q2"


def _context():
    return context_for(SIZE, seed=42)


def test_compile_cold(benchmark):
    """Full compile every round: closure, core, schedule, all plans."""
    context = _context()
    tpq = query(QUERY)
    compiled = benchmark(compile_query, context, tpq)
    assert compiled.level_count() == len(compiled.schedule) + 1


def test_compile_warm(benchmark):
    """Plan-cache hit every round: one locked dict probe."""
    context = _context()
    tpq = query(QUERY)
    context.compile(tpq)  # prime
    compiled = benchmark(context.compile, tpq)
    assert compiled is context.compile(tpq)
    assert context.plan_cache.hits > 0


def test_warm_compile_at_least_5x_faster():
    """Acceptance gate: a warm hit skips closure/schedule/plan building."""
    context = _context()
    tpq = query(QUERY)
    rounds = 30

    context.plan_cache.invalidate()
    started = perf_counter()
    for _ in range(rounds):
        compile_query(context, tpq)
    cold = perf_counter() - started

    context.plan_cache.invalidate()
    context.compile(tpq)  # prime
    started = perf_counter()
    for _ in range(rounds):
        context.compile(tpq)
    warm = perf_counter() - started

    assert warm * 5 <= cold, (
        "warm compile %.6fs not >= 5x faster than cold %.6fs" % (warm, cold)
    )
