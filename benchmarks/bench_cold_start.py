"""Cold-start benchmarks for :class:`repro.backend.disk.DiskBackend`.

Not a paper figure. The point of the on-disk format (DESIGN §12) is that
reopening a corpus costs a few mmaps plus a WAL replay instead of an XML
reparse, so these benchmarks keep that promise honest:

- ``test_cold_open`` times ``DiskBackend.open`` on a sealed corpus — the
  production cold-start path;
- ``test_reingest_from_xml`` times the path it replaces: parse the XML
  and splice it into a fresh corpus;
- ``test_query_on_disk_backend`` times a full engine query served off
  the mmap'd segment, pinning the *serving* cost of going through disk;
- ``test_open_at_least_10x_faster_than_reingest`` is the plain
  (non-benchmark) acceptance gate CI relies on: median ``open()`` must
  be at least 10× faster than median re-ingest on the same content.
"""

import atexit
import os
import shutil
import statistics
import tempfile
from time import perf_counter

from benchmarks.harness import document_for
from repro.backend.disk import DiskBackend
from repro.collection import Corpus
from repro.engine import Engine
from repro.xmark import PAPER_QUERIES
from repro.xmltree import parse
from repro.xmltree.serialize import to_xml

#: Overridable so CI smoke runs can use a small document.
SIZE = os.environ.get("FLEXPATH_BENCH_SIZE", "10MB")
QUERY = PAPER_QUERIES["Q2"]

_prepared = {}


def _corpus_state():
    """Build (once) a sealed on-disk corpus plus its source XML text."""
    if SIZE not in _prepared:
        xml_text = to_xml(document_for(SIZE, seed=42))
        path = tempfile.mkdtemp(prefix="flexpath-coldstart-")
        atexit.register(shutil.rmtree, path, True)
        backend = DiskBackend.create(path)
        backend.add_document(parse(xml_text))
        backend.compact()
        backend.close()
        _prepared[SIZE] = (path, xml_text)
    return _prepared[SIZE]


def test_cold_open(benchmark):
    """mmap the sealed segment, replay the (empty) WAL, serve."""
    path, _xml_text = _corpus_state()

    def cold_open():
        backend = DiskBackend.open(path)
        count = len(backend)
        backend.close()
        return count

    assert benchmark(cold_open) > 0


def test_reingest_from_xml(benchmark):
    """The cost cold open avoids: full XML parse + corpus splice."""
    _path, xml_text = _corpus_state()

    def reingest():
        corpus = Corpus()
        corpus.add_text(xml_text)
        return len(corpus.document)

    assert benchmark(reingest) > 0


def test_query_on_disk_backend(benchmark):
    """A full engine query answered off the mmap'd segment."""
    path, _xml_text = _corpus_state()
    backend = DiskBackend.open(path)
    engine = Engine(backend, cache=False)
    try:
        def serve():
            return engine.query(QUERY, k=5)

        result = benchmark(serve)
        assert result.answers
    finally:
        backend.close()


def test_open_at_least_10x_faster_than_reingest():
    """Acceptance gate: open() >= 10x faster than re-ingest from XML."""
    path, xml_text = _corpus_state()
    rounds = 5

    open_times = []
    for _ in range(rounds):
        started = perf_counter()
        backend = DiskBackend.open(path)
        backend.close()
        open_times.append(perf_counter() - started)

    ingest_times = []
    for _ in range(rounds):
        corpus = Corpus()
        started = perf_counter()
        corpus.add_text(xml_text)
        ingest_times.append(perf_counter() - started)

    cold_open = statistics.median(open_times)
    reingest = statistics.median(ingest_times)
    assert cold_open * 10 <= reingest, (
        "cold open %.6fs is not 10x faster than re-ingest %.6fs"
        % (cold_open, reingest)
    )
