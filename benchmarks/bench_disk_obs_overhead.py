"""Storage-plane instrumentation overhead: the zero-overhead-when-off gate.

Not a paper figure.  PR 8 threads counters, histograms, and event emission
through every DiskBackend I/O seam — WAL append/fsync, WAL replay, segment
decode/seal, lazy hydration, compaction.  The design contract is the same
as the query-path instrumentation: one ``REGISTRY.enabled`` / ``HUB.active``
attribute check when nothing is watching, and bounded bookkeeping (a
couple of dict folds under one lock per I/O operation) when the registry
is on.  Disk operations are fsync- and memcpy-dominated (hundreds of µs to
ms), so instrumentation in the ns range must vanish into them:

- ``test_cold_open_instrumented`` / ``test_ingest_instrumented`` time the
  default path (registry enabled, no listeners) — what production runs;
- ``test_disk_obs_on_vs_off`` interleaves enabled/disabled medians for
  both cold open and WAL-durable ingest and *asserts* the instrumented
  path stays within 5% of the kill-switch path (plus a 100 µs noise
  floor, matching ``benchmarks/regress.py``'s tolerance discipline).

The gate must not cry wolf: disk timings carry multi-percent filesystem
noise (journal flushes, dentry churn) that dwarfs the instrumentation,
so each comparison alternates which side of the on/off pair runs first
(cancelling first-in-pair bias) and the whole experiment repeats three
times — the gate fails only when *every* trial shows the instrumented
path over budget, because a real regression reproduces across trials
and noise does not.
"""

import atexit
import os
import shutil
import statistics
import tempfile
from time import perf_counter

from benchmarks.harness import document_for
from repro.backend.disk import DiskBackend
from repro.obs.metrics import REGISTRY
from repro.xmltree import parse
from repro.xmltree.serialize import to_xml

#: Overridable so CI smoke runs can use a small document.
SIZE = os.environ.get("FLEXPATH_BENCH_SIZE", "10MB")

#: Relative overhead budget for instrumented vs kill-switch medians.
OVERHEAD_BUDGET = 1.05

#: Absolute noise floor (seconds): below this, timing jitter dominates.
NOISE_FLOOR = 100e-6

_prepared = {}


def _corpus_state():
    """Build (once) a sealed on-disk corpus plus one extra document's XML."""
    if SIZE not in _prepared:
        xml_text = to_xml(document_for(SIZE, seed=42))
        extra_xml = to_xml(document_for("1MB", seed=7))
        path = tempfile.mkdtemp(prefix="flexpath-diskobs-")
        atexit.register(shutil.rmtree, path, True)
        backend = DiskBackend.create(path)
        backend.add_document(parse(xml_text))
        backend.compact()
        backend.close()
        _prepared[SIZE] = (path, parse(extra_xml))
    return _prepared[SIZE]


def _cold_open(path):
    backend = DiskBackend.open(path)
    count = len(backend)
    backend.close()
    return count


def _ingest_once(extra_document):
    """One WAL-durable ingest into a scratch corpus (created per call)."""
    scratch = tempfile.mkdtemp(prefix="flexpath-diskobs-ingest-")
    try:
        backend = DiskBackend.create(scratch)
        backend.add_document(extra_document)
        backend.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def test_cold_open_instrumented(benchmark):
    """The production cold-start path with the registry on (the default)."""
    path, _extra = _corpus_state()
    assert REGISTRY.enabled
    count = benchmark(_cold_open, path)
    assert count > 0


def test_ingest_instrumented(benchmark):
    """WAL-durable ingest (append + fsync) with the registry on."""
    _path, extra = _corpus_state()
    assert REGISTRY.enabled
    benchmark(_ingest_once, extra)


def _timed(operation, enabled):
    """One run of ``operation`` with the registry forced on or off."""
    REGISTRY.enabled = enabled
    try:
        started = perf_counter()
        operation()
        return perf_counter() - started
    finally:
        REGISTRY.enabled = True


def _interleaved_medians(operation, rounds):
    """Median seconds for ``operation`` with the registry on vs off.

    Interleaved on/off pairs, alternating which side runs first each
    round — the first run of a pair sees different filesystem state
    (journal flushes from the previous round's cleanup), and alternating
    cancels that bias instead of charging it all to one side.
    """
    on_times, off_times = [], []
    operation()  # warm both code paths once
    for index in range(rounds):
        on_first = index % 2 == 0
        first = _timed(operation, enabled=on_first)
        second = _timed(operation, enabled=not on_first)
        on_times.append(first if on_first else second)
        off_times.append(second if on_first else first)
    return statistics.median(on_times), statistics.median(off_times)


def _within_budget(on_seconds, off_seconds):
    return on_seconds <= off_seconds * OVERHEAD_BUDGET + NOISE_FLOOR


def _best_of_trials(operation, trials, rounds):
    """(passed, best_on, best_off) over independent repeated experiments.

    A single trial's median ratio scatters several percent either side
    of 1.0 on a millisecond-scale fsync-bound operation; a genuine
    overhead regression shifts *every* trial. The gate therefore passes
    if any one trial lands within budget, and reports the trial with
    the lowest on/off ratio.
    """
    best = None
    passed = False
    for _ in range(trials):
        on_seconds, off_seconds = _interleaved_medians(operation, rounds)
        passed = passed or _within_budget(on_seconds, off_seconds)
        ratio = on_seconds / off_seconds if off_seconds > 0 else 0.0
        if best is None or ratio < best[0]:
            best = (ratio, on_seconds, off_seconds)
        if passed:
            break
    return passed, best[1], best[2]


def test_disk_obs_on_vs_off(benchmark):
    """Gate: instrumented cold open and ingest within 5% of kill-switch."""
    path, extra = _corpus_state()
    trials, rounds = 3, 10

    open_ok, open_on, open_off = _best_of_trials(
        lambda: _cold_open(path), trials, rounds
    )
    ingest_ok, ingest_on, ingest_off = _best_of_trials(
        lambda: _ingest_once(extra), trials, rounds
    )

    def both():
        _cold_open(path)
        _ingest_once(extra)

    benchmark.pedantic(both, rounds=3, iterations=1)
    benchmark.extra_info["cold_open_on_seconds"] = open_on
    benchmark.extra_info["cold_open_off_seconds"] = open_off
    benchmark.extra_info["ingest_on_seconds"] = ingest_on
    benchmark.extra_info["ingest_off_seconds"] = ingest_off
    benchmark.extra_info["cold_open_on_over_off"] = (
        open_on / open_off if open_off > 0 else 0.0
    )
    benchmark.extra_info["ingest_on_over_off"] = (
        ingest_on / ingest_off if ingest_off > 0 else 0.0
    )

    assert open_ok, (
        "instrumented cold open %.6fs exceeds %.0f%% of kill-switch %.6fs"
        " in every trial"
        % (open_on, (OVERHEAD_BUDGET - 1) * 100, open_off)
    )
    assert ingest_ok, (
        "instrumented ingest %.6fs exceeds %.0f%% of kill-switch %.6fs"
        " in every trial"
        % (ingest_on, (OVERHEAD_BUDGET - 1) * 100, ingest_off)
    )
