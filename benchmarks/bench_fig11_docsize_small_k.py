"""Figure 11 — DPO vs SSO over document size, small K.

Paper setup: query Q2, K = 12, documents from 1 MB to 100 MB. Expected
shape: DPO and SSO stay close — with K this small a relaxation is rarely
needed (the paper saw one only on the 1 MB document), so both algorithms
do essentially the same strict evaluation.

Scaled here to 100 KB - 1.6 MB documents.
"""

import pytest

from benchmarks.harness import SIZES, context_for, run_topk, warm

QUERY = "Q2"
K = 12


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.parametrize("algorithm", ["dpo", "sso"])
def test_fig11(benchmark, size, algorithm):
    context = context_for(size)
    warm(context, QUERY)
    result = benchmark.pedantic(
        run_topk,
        args=(context, algorithm, QUERY, K),
        rounds=3,
        warmup_rounds=1,
    )
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["answers"] = len(result.answers)
