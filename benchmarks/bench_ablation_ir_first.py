"""Ablation — structure-first vs IR-first evaluation order (§5.1).

The paper: "An alternative possibility would first use an inverted index
to evaluate the contains predicates and filter out potential answers ...
The efficiency of each approach depends on the types of queries." This
bench runs the comparison the paper deferred:

- a *selective* full-text expression (rare marker terms): IR-first should
  win by skipping structural work for non-matching items;
- an *unselective* expression (common vocabulary words): the pre-filter
  admits nearly everything and becomes overhead.
"""

import pytest

from benchmarks.harness import context_for, query
from repro.topk import DPO, IRFirstDPO

SIZE = "10MB"
K = 10

QUERIES = {
    "selective": '//item[./mailbox/mail/text[.contains("vintage" and "treasure")]]',
    "unselective": '//item[./mailbox/mail/text[.contains("time" or "year" or "day")]]',
}

_STRATEGIES = {"structure-first-eval": DPO, "ir-first-eval": IRFirstDPO}


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE)
    # Warm IR caches for both expressions.
    for text in QUERIES.values():
        DPO(ctx).top_k(query(text), 2)
    return ctx


@pytest.fixture(scope="module")
def strategies(context):
    return {name: cls(context) for name, cls in _STRATEGIES.items()}


@pytest.mark.parametrize("selectivity", list(QUERIES))
@pytest.mark.parametrize("strategy_name", list(_STRATEGIES))
def test_ablation_ir_first(benchmark, strategies, strategy_name, selectivity):
    strategy = strategies[strategy_name]
    tpq = query(QUERIES[selectivity])
    result = benchmark.pedantic(
        strategy.top_k, args=(tpq, K), rounds=3, warmup_rounds=1
    )
    benchmark.extra_info["answers"] = len(result.answers)
    benchmark.extra_info["tuples"] = sum(
        s.tuples_produced for s in result.stats
    )
