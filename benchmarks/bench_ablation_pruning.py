"""Ablation — threshold / maxScoreGrowth pruning on vs off (§5.2.2).

Runs the same fully-relaxed SSO plan with pruning enabled (k given) and
disabled (k = None). Expected: pruning never hurts, and pays off most when
K is small relative to the candidate answer set.
"""

import pytest

from benchmarks.harness import context_for, query, warm
from repro.plans import SSO_MODE, build_encoded_plan
from repro.rank import STRUCTURE_FIRST

SIZE = "10MB"
QUERY = "Q3"


@pytest.fixture(scope="module")
def setup():
    context = context_for(SIZE)
    warm(context, QUERY)
    schedule = context.schedule(query(QUERY))
    plan = build_encoded_plan(schedule, len(schedule))
    return context, plan


@pytest.mark.parametrize("k", [5, 50, None])
def test_ablation_pruning(benchmark, setup, k):
    context, plan = setup

    def run():
        return context.executor.run(
            plan, k=k, scheme=STRUCTURE_FIRST, mode=SSO_MODE
        )

    result = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    benchmark.extra_info["pruned_tuples"] = result.stats.tuples_pruned
    benchmark.extra_info["max_intermediate"] = result.stats.max_intermediate
