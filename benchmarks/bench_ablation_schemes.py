"""Ablation — evaluation cost of the three ranking schemes (§4.2 prop. 3).

Same query, K, document and algorithm under structure-first, combined and
keyword-first ranking. Expected: structure-first is cheapest (stops at the
K-th level), combined pays for the §5.1 look-ahead window, keyword-first is
the most expensive — it must encode every relaxation.
"""

import pytest

from benchmarks.harness import context_for, run_topk, warm
from repro.rank import COMBINED, KEYWORD_FIRST, STRUCTURE_FIRST

SIZE = "10MB"
QUERY = "Q2"
K = 40

SCHEMES = {
    "structure-first": STRUCTURE_FIRST,
    "combined": COMBINED,
    "keyword-first": KEYWORD_FIRST,
}


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE)
    warm(ctx, QUERY)
    return ctx


@pytest.mark.parametrize("scheme_name", list(SCHEMES))
@pytest.mark.parametrize("algorithm", ["dpo", "hybrid"])
def test_ablation_schemes(benchmark, context, algorithm, scheme_name):
    result = benchmark.pedantic(
        run_topk,
        args=(context, algorithm, QUERY, K),
        kwargs={"scheme": SCHEMES[scheme_name]},
        rounds=3,
        warmup_rounds=1,
    )
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["levels_evaluated"] = result.levels_evaluated
