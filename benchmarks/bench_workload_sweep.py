"""Workload sweep — the three algorithms over generated query mixes.

Beyond the paper's three hand-picked queries: a batch of structurally
diverse, guaranteed-satisfiable queries sampled from the document itself,
evaluated end to end per algorithm. This is the robustness check a
downstream adopter would run before trusting the Q1-Q3 figures.
"""

import pytest

from benchmarks.harness import context_for
from repro.topk import DPO, Hybrid, SSO
from repro.workload import generate_workload

SIZE = "1MB"
K = 10
WORKLOAD_SIZE = 12

_ALGORITHMS = {"dpo": DPO, "sso": SSO, "hybrid": Hybrid}


@pytest.fixture(scope="module")
def setup():
    context = context_for(SIZE)
    workload = generate_workload(
        context.document, WORKLOAD_SIZE, seed=17, contains_probability=0.4
    )
    # Warm schedules and IR caches once.
    strategy = SSO(context)
    for query in workload:
        strategy.top_k(query, 2)
    return context, workload


@pytest.mark.parametrize("algorithm", list(_ALGORITHMS))
def test_workload_sweep(benchmark, setup, algorithm):
    context, workload = setup
    strategy = _ALGORITHMS[algorithm](context)

    def run_batch():
        total = 0
        for query in workload:
            total += len(strategy.top_k(query, K).answers)
        return total

    answers = benchmark.pedantic(run_batch, rounds=3, warmup_rounds=1)
    benchmark.extra_info["total_answers"] = answers
    benchmark.extra_info["queries"] = len(workload)
