"""Cache-effect benchmarks: cold vs warm evaluation, repeated queries.

Not a paper figure. PR 4 added two caching tiers — the per-context
:class:`~repro.plans.eval_cache.EvaluationCache` (tag pools, per-base join
candidates, contains probes, satisfier sets, shared across relaxation
levels and queries) and the facade-level
:class:`~repro.cache.ResultCache` (whole top-K results, corpus-version
keyed).  This module measures both effects and keeps the acceptance
targets honest:

- ``test_topk_cold_cache`` / ``test_topk_warm_cache`` time the same
  evaluation with the evaluation cache cleared per round vs left warm;
- ``test_facade_repeat_query_*`` time the full facade path where a
  repeated query is answered from the result cache;
- ``test_warm_at_least_twice_as_fast`` is the plain (non-benchmark)
  assertion CI relies on: a repeated facade query must run >= 2x faster
  warm than cold, and the warm evaluation cache must actually be hitting.
"""

import os
from time import perf_counter

import pytest

from benchmarks.harness import context_for, document_for, run_topk, warm
from repro import FleXPath

#: Overridable so CI smoke runs can use a small document.
SIZE = os.environ.get("FLEXPATH_BENCH_SIZE", "10MB")
QUERY = "Q2"
K = 10

FACADE_QUERY = (
    '//item[./description[.contains("gold")] and ./mailbox]'
)


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE, seed=42)
    warm(ctx, QUERY)
    return ctx


@pytest.fixture(scope="module")
def engine():
    return FleXPath(document_for(SIZE, seed=42))


def _run_cold(context, algorithm):
    context.eval_cache.clear()
    return run_topk(context, algorithm, QUERY, K)


@pytest.mark.parametrize("algorithm", ["dpo", "hybrid"])
def test_topk_cold_cache(benchmark, context, algorithm):
    """Every round pays the full leaf scans, joins, and contains probes."""
    result = benchmark(_run_cold, context, algorithm)
    assert result.answers


@pytest.mark.parametrize("algorithm", ["dpo", "hybrid"])
def test_topk_warm_cache(benchmark, context, algorithm):
    """Rounds after the first reuse pools/joins/probes across levels."""
    run_topk(context, algorithm, QUERY, K)  # prime
    result = benchmark(run_topk, context, algorithm, QUERY, K)
    assert result.answers
    ratio = context.eval_cache.hit_ratio()
    assert ratio is not None and ratio > 0.5
    benchmark.extra_info["eval_cache_hit_ratio"] = ratio


def test_facade_repeat_query_warm(benchmark, engine):
    """The tier-2 path: a repeated query is a ResultCache lookup."""
    first = engine.query(FACADE_QUERY, k=K)
    result = benchmark(engine.query, FACADE_QUERY, k=K)
    assert result is first


def test_facade_repeat_query_cold(benchmark):
    """The same facade query with both caching tiers disabled."""
    engine = FleXPath(document_for(SIZE, seed=42), cache=False)
    result = benchmark(engine.query, FACADE_QUERY, k=K)
    assert result.answers is not None


def test_warm_at_least_twice_as_fast():
    """The PR's acceptance target, asserted outright.

    Cold: a cache-disabled engine evaluating from scratch. Warm: a cached
    engine re-answering a query it has already seen. The gap is orders of
    magnitude (dict probe vs full evaluation), so the 2x floor holds far
    from the noise.
    """
    rounds = 5
    document = document_for(SIZE, seed=42)

    cold_engine = FleXPath(document, cache=False)
    cold_engine.query(FACADE_QUERY, k=K)  # parse/IR warmup outside timing
    started = perf_counter()
    for _ in range(rounds):
        cold_engine.query(FACADE_QUERY, k=K)
    cold = (perf_counter() - started) / rounds

    warm_engine = FleXPath(document)
    warm_engine.query(FACADE_QUERY, k=K)  # fills both tiers
    started = perf_counter()
    for _ in range(rounds):
        warm_engine.query(FACADE_QUERY, k=K)
    warm_seconds = (perf_counter() - started) / rounds

    assert warm_seconds * 2 <= cold, (warm_seconds, cold)
    info = warm_engine.cache_info()
    assert info["result_cache"]["entries"] == 1
    assert info["eval_cache"]["misses"] >= 1
