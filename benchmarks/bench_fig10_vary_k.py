"""Figure 10 — DPO vs SSO as K grows.

Paper setup: 10 MB document, query Q3, K from 50 to 600. Expected shape:
equal at small K (no relaxation needed), SSO increasingly better as K
forces more relaxations and larger intermediate results (the paper reports
up to 68% improvement at K = 600).

Scaled here to the 400 KB document with K from 2 to 240 (K=2 sits below the exact-answer count, reproducing the paper's left-end parity).
"""

import pytest

from benchmarks.harness import attach_phase_info, context_for, run_topk, warm

SIZE = "10MB"
QUERY = "Q3"
K_SERIES = [2, 20, 60, 120, 240]


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE)
    warm(ctx, QUERY)
    return ctx


@pytest.mark.parametrize("k", K_SERIES)
@pytest.mark.parametrize("algorithm", ["dpo", "sso"])
def test_fig10(benchmark, context, algorithm, k):
    result = benchmark.pedantic(
        run_topk,
        args=(context, algorithm, QUERY, k),
        rounds=3,
        warmup_rounds=1,
    )
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["answers"] = len(result.answers)
    # One untimed traced run decomposes the cost per executor phase.
    attach_phase_info(benchmark, context, algorithm, QUERY, k)
