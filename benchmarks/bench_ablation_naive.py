"""Ablation — naive query rewriting vs DPO vs SSO (§1's rejected baseline).

The "naive solution" writes out every relaxed query and evaluates them all.
DPO adds early stopping and cross-level answer memory; SSO replaces the
whole walk with one encoded plan. Expected ordering at small K:
naive ≥ DPO ≥ SSO, with naive paying for every level regardless of K.
"""

import pytest

from benchmarks.harness import context_for, query, warm
from repro.topk import DPO, NaiveRewriting, SSO

SIZE = "10MB"
QUERY = "Q2"
K = 10

_ALGORITHMS = {"naive": NaiveRewriting, "dpo": DPO, "sso": SSO}


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE)
    warm(ctx, QUERY)
    return ctx


@pytest.mark.parametrize("algorithm", list(_ALGORITHMS))
def test_ablation_naive(benchmark, context, algorithm):
    strategy = _ALGORITHMS[algorithm](context)
    tpq = query(QUERY)
    result = benchmark.pedantic(
        strategy.top_k, args=(tpq, K), rounds=3, warmup_rounds=1
    )
    benchmark.extra_info["levels_evaluated"] = result.levels_evaluated
