"""Figure 13 — SSO vs Hybrid as the number of relaxations grows.

Paper setup: 10 MB document, K = 500, varying the number of relaxations.
Expected shape: Hybrid consistently at or below SSO, with the gap growing
as more relaxations mean more intermediate results for SSO to re-sort.

Scaled here to the 400 KB document, K = 200; the number of relaxations is
varied by capping the schedule (max_relaxations), the same lever the
paper's queries vary structurally.
"""

import pytest

from benchmarks.harness import context_for, run_topk, warm

SIZE = "10MB"
QUERY = "Q3"
K = 200
RELAXATION_CAPS = [0, 2, 4, 8, 12]


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE)
    warm(ctx, QUERY)
    return ctx


@pytest.mark.parametrize("relaxations", RELAXATION_CAPS)
@pytest.mark.parametrize("algorithm", ["sso", "hybrid"])
def test_fig13(benchmark, context, algorithm, relaxations):
    result = benchmark.pedantic(
        run_topk,
        args=(context, algorithm, QUERY, K),
        kwargs={"max_relaxations": relaxations},
        rounds=3,
        warmup_rounds=1,
    )
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["answers"] = len(result.answers)
