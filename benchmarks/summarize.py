"""Summarize a saved benchmark run into per-figure series.

Usage::

    python benchmarks/summarize.py bench_output.txt

Parses the pytest-benchmark table from a captured run and prints, for each
figure/ablation module, the median time per parameter combination — the
rows the paper's figures plot.
"""

from __future__ import annotations

import re
import sys
from collections import defaultdict

_ROW = re.compile(
    r"^(test_\w+)\[([^\]]+)\]\s+"          # name[params]
    r"([\d,.]+)\s+\(.*?\)\s+"               # min
    r"([\d,.]+)\s+\(.*?\)\s+"               # max
    r"([\d,.]+)\s+\(.*?\)\s+"               # mean
    r"([\d,.]+)\s+\(.*?\)\s+"               # stddev
    r"([\d,.]+)\s+\(.*?\)"                   # median
)

_UNIT = re.compile(r"benchmark: .*|Name \(time in (\w+)\)")


def parse(path):
    unit = "ms"
    rows = defaultdict(list)
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            unit_match = re.search(r"Name \(time in (\w+)\)", line)
            if unit_match:
                unit = unit_match.group(1)
            row = _ROW.match(line.strip())
            if row:
                name, params = row.group(1), row.group(2)
                median = float(row.group(7).replace(",", ""))
                if unit == "us":
                    median /= 1000.0
                elif unit == "s":
                    median *= 1000.0
                rows[name].append((params, median))
    return rows


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    rows = parse(argv[1])
    if not rows:
        print("no benchmark rows found in %s" % argv[1])
        return 1
    for name in sorted(rows):
        print("\n%s (median ms):" % name)
        for params, median in sorted(rows[name]):
            print("  %-28s %10.1f" % (params, median))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
