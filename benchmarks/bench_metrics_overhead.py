"""Metrics-registry overhead: what does always-on accounting cost?

Not a paper figure. Unlike the opt-in tracer, the metrics registry is
*always on*: every query, plan execution, and IR cache access is counted
even with no listener installed. The design keeps the hot paths cheap —
plain unsynchronized int increments inside the IR engine, one
``REGISTRY.enabled`` check plus a single ``inc_many`` lock acquisition at
each per-query fold point — and this module keeps that promise honest:

- ``test_metrics_on_query`` times the normal query path (registry
  enabled, no event listeners), which is exactly what every figure
  benchmark times.
- ``test_metrics_on_vs_off`` measures the same path with the registry
  disabled and records the on/off ratio in ``extra_info``; the
  acceptance target is <= 1.05 (no hard assert — CI timing noise would
  make a threshold flaky; ``benchmarks/regress.py`` gates the medians
  instead).
"""

import os
from time import perf_counter

import pytest

from benchmarks.harness import context_for, run_topk, warm
from repro.obs.metrics import REGISTRY

#: Overridable so CI smoke runs can use a small document.
SIZE = os.environ.get("FLEXPATH_BENCH_SIZE", "10MB")
QUERY = "Q2"
K = 10


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE, seed=42)
    warm(ctx, QUERY)
    return ctx


@pytest.mark.parametrize("algorithm", ["dpo", "sso", "hybrid"])
def test_metrics_on_query(benchmark, context, algorithm):
    """The always-on path: registry enabled, no listeners (the default)."""
    result = benchmark(run_topk, context, algorithm, QUERY, K)
    assert result.answers


def test_metrics_on_vs_off(benchmark, context):
    """Record the on/off cost ratio of the registry in ``extra_info``."""
    rounds = 30
    REGISTRY.enabled = False
    try:
        run_topk(context, "hybrid", QUERY, K)  # warm
        started = perf_counter()
        for _ in range(rounds):
            run_topk(context, "hybrid", QUERY, K)
        off_seconds = (perf_counter() - started) / rounds
    finally:
        REGISTRY.enabled = True

    result = benchmark(run_topk, context, "hybrid", QUERY, K)
    assert result.answers
    on_seconds = benchmark.stats.stats.median

    benchmark.extra_info["metrics_off_seconds"] = off_seconds
    benchmark.extra_info["metrics_on_seconds"] = on_seconds
    benchmark.extra_info["metrics_on_over_off"] = (
        on_seconds / off_seconds if off_seconds > 0 else 0.0
    )
