"""Figure 14 — SSO vs Hybrid over document size.

Paper setup: query Q3, K = 500, documents 1-100 MB. Expected shape:
Hybrid ≤ SSO everywhere, difference growing with document size (bigger
intermediate results to re-sort).

Scaled here to 100 KB - 1.6 MB documents with K = 200.
"""

import pytest

from benchmarks.harness import SIZES, context_for, run_topk, warm

QUERY = "Q3"
K = 200


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.parametrize("algorithm", ["sso", "hybrid"])
def test_fig14(benchmark, size, algorithm):
    context = context_for(size)
    warm(context, QUERY)
    result = benchmark.pedantic(
        run_topk,
        args=(context, algorithm, QUERY, K),
        rounds=3,
        warmup_rounds=1,
    )
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["answers"] = len(result.answers)
