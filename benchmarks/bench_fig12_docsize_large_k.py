"""Figure 12 — DPO vs SSO over document size, large K.

Paper setup: query Q2, K = 500, documents 1-100 MB. Expected shape: with
K large, many relaxations get encoded; intermediate results grow with both
document size and K, and SSO's pruning pulls ahead of DPO — the gap grows
with document size.

Scaled here to 100 KB - 1.6 MB documents with K = 200.
"""

import pytest

from benchmarks.harness import SIZES, context_for, run_topk, warm

QUERY = "Q2"
K = 200


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.parametrize("algorithm", ["dpo", "sso"])
def test_fig12(benchmark, size, algorithm):
    context = context_for(size)
    warm(context, QUERY)
    result = benchmark.pedantic(
        run_topk,
        args=(context, algorithm, QUERY, K),
        rounds=3,
        warmup_rounds=1,
    )
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["answers"] = len(result.answers)
