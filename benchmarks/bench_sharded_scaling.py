"""Sharded scatter-gather scaling: 1 / 2 / 4 shards on a skewed corpus.

The workload is deliberately skewed: every document carrying the marker
term lands on shard 0 (indices ≡ 0 mod 4 under the round-robin router),
so under keyword-first ranking the other shards' maxScoreGrowth keyword
ceiling is ~0 once K answers are in hand — the merge prunes them after
the strict round and only shard 0 walks the rest of the relaxation
schedule.  The 1-shard configuration is the degenerate topology (whole
corpus in one shard, nothing to prune), so the 4-vs-1 ratio isolates the
early-termination win rather than thread parallelism (which the GIL
denies to pure-Python scatter anyway).

``test_sharded_speedup_gate`` is the CI gate from the issue: ≥1.5×
median speedup at 4 shards with at least one shard pruned.
"""

import statistics
from time import perf_counter

import pytest

from repro.backend.sharded import RoundRobinRouter, ShardedBackend
from repro.engine import Engine
from repro.xmltree import parse

SHARD_COUNTS = (1, 2, 4)
MARKER = "xylograph"
QUERY = '//a[./b[.contains("%s")] and ./c[./d]]' % MARKER
K = 3
DOC_COUNT = 64
FILLERS = ("gold", "ring", "vintage", "chair", "stamp", "coin")


def _document(index):
    """Six <a><b>..</b><c>..</c></a> items; every 4th doc carries the marker."""
    parts = ["<root>"]
    for child in range(6):
        if index % 4 == 0 and child == 0:
            word = MARKER
        else:
            word = FILLERS[(index + child) % len(FILLERS)]
        parts.append(
            "<a><b>%s payload %d</b><c><d>%s extra</d></c></a>"
            % (word, index, FILLERS[(index * 7 + child) % len(FILLERS)])
        )
    parts.append("</root>")
    return parse("".join(parts))


def _engine(shard_count):
    backend = ShardedBackend.in_memory(
        shard_count, router=RoundRobinRouter()
    )
    for index in range(DOC_COUNT):
        backend.add_document(_document(index), name="doc%d" % index)
    # Caching off: the timing loops re-run the identical query, so any
    # result/eval-cache hit would measure the cache, not the scatter.
    return Engine(backend, cache=False)


@pytest.fixture(scope="module")
def engines():
    return {count: _engine(count) for count in SHARD_COUNTS}


def _run(engine):
    return engine.query(QUERY, k=K, scheme="keyword-first", algorithm="dpo")


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_sharded_scaling(benchmark, engines, shard_count):
    engine = engines[shard_count]
    result = benchmark.pedantic(
        lambda: _run(engine), rounds=5, warmup_rounds=1
    )
    assert len(result.answers) == K
    benchmark.extra_info["shard_count"] = shard_count
    benchmark.extra_info["shard_rounds"] = result.shard_rounds
    benchmark.extra_info["shards_pruned"] = result.shards_pruned


def _median_seconds(engine, rounds=5):
    _run(engine)  # warm the plan cache and the IR postings
    samples = []
    for _ in range(rounds):
        start = perf_counter()
        _run(engine)
        samples.append(perf_counter() - start)
    return statistics.median(samples)


def test_sharded_speedup_gate(engines):
    """The issue's acceptance gate: ≥1.5× at 4 shards, with real pruning."""
    result = _run(engines[4])
    assert result.shards_pruned >= 1, "skewed workload pruned no shard"
    flat = _median_seconds(engines[1])
    sharded = _median_seconds(engines[4])
    speedup = flat / sharded
    assert speedup >= 1.5, (
        "4-shard scatter-gather only %.2fx faster than unsharded"
        " (flat %.1fms, sharded %.1fms)"
        % (speedup, flat * 1e3, sharded * 1e3)
    )


def test_sharded_answers_match_unsharded(engines):
    """The speedup is not bought with answers: 1/2/4 shards agree."""
    reference = [
        (round(a.score.structural, 9), round(a.score.keyword, 9))
        for a in _run(engines[1]).answers
    ]
    for count in SHARD_COUNTS[1:]:
        got = [
            (round(a.score.structural, 9), round(a.score.keyword, 9))
            for a in _run(engines[count]).answers
        ]
        assert got == reference, "%d shards diverged" % count
