"""Figure 9 — DPO vs SSO as the number of relaxations grows.

Paper setup: 1 MB document, K = 50, queries Q1 (no relaxation needed),
Q2 (2 relaxations), Q3 (6 relaxations). Expected shape: SSO beats DPO and
the gap widens with the number of relaxations.

Scaled here to the 100 KB document and K = 20 (see harness docstring).
"""

import pytest

from benchmarks.harness import attach_phase_info, context_for, run_topk, warm

SIZE = "1MB"
K = 20


@pytest.fixture(scope="module")
def context():
    ctx = context_for(SIZE)
    for name in ("Q1", "Q2", "Q3"):
        warm(ctx, name)
    return ctx


@pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q3"])
@pytest.mark.parametrize("algorithm", ["dpo", "sso"])
def test_fig09(benchmark, context, query_name, algorithm):
    result = benchmark(run_topk, context, algorithm, query_name, K)
    assert len(result.answers) <= K
    benchmark.extra_info["relaxations_used"] = result.relaxations_used
    benchmark.extra_info["answers"] = len(result.answers)
    # One untimed traced run decomposes the cost per executor phase.
    attach_phase_info(benchmark, context, algorithm, query_name, K)
