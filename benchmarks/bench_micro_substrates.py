"""Micro-benchmarks for the substrates: parsing, indexing, statistics,
structural joins, IR evaluation.

Not a paper figure — these bound the fixed costs the figure benchmarks
deliberately exclude (the paper likewise reports query time, not load
time).
"""

import os

import pytest

from benchmarks.harness import SIZES, document_for
from repro.ir import IREngine, InvertedIndex, parse_ftexpr
from repro.plans import structural_join
from repro.stats import DocumentStatistics
from repro.xmark import generate_document
from repro.xmltree import dump_document, load_document, parse, to_xml

#: Overridable so CI smoke runs can use a small document.
SIZE = os.environ.get("FLEXPATH_BENCH_SIZE", "10MB")


@pytest.fixture(scope="module")
def document():
    return document_for(SIZE, seed=42)


@pytest.fixture(scope="module")
def xml_text(document):
    return to_xml(document)


def test_micro_generate(benchmark):
    doc = benchmark.pedantic(
        generate_document,
        kwargs={"target_bytes": SIZES[SIZE], "seed": 7},
        rounds=3,
        warmup_rounds=1,
    )
    benchmark.extra_info["nodes"] = len(doc)


def test_micro_parse(benchmark, xml_text):
    doc = benchmark.pedantic(parse, args=(xml_text,), rounds=3, warmup_rounds=1)
    benchmark.extra_info["nodes"] = len(doc)


def test_micro_inverted_index(benchmark, document):
    index = benchmark.pedantic(
        InvertedIndex, args=(document,), rounds=3, warmup_rounds=1
    )
    benchmark.extra_info["vocabulary"] = index.vocabulary_size


def test_micro_statistics(benchmark, document):
    benchmark.pedantic(
        DocumentStatistics, args=(document,), rounds=3, warmup_rounds=1
    )


def test_micro_structural_join(benchmark, document):
    items = document.nodes_with_tag("item")
    texts = document.nodes_with_tag("text")

    pairs = benchmark(structural_join, items, texts, "ad")
    benchmark.extra_info["pairs"] = len(pairs)


def test_micro_dump_v2(benchmark, document, tmp_path):
    path = str(tmp_path / "doc.fxd")
    benchmark.pedantic(
        dump_document, args=(document, path), rounds=3, warmup_rounds=1
    )
    benchmark.extra_info["bytes"] = os.path.getsize(path)


def test_micro_load_v2(benchmark, document, tmp_path):
    path = str(tmp_path / "doc.fxd")
    dump_document(document, path)
    loaded = benchmark.pedantic(
        load_document, args=(path,), rounds=3, warmup_rounds=1
    )
    benchmark.extra_info["nodes"] = len(loaded)
    benchmark.extra_info["footprint_bytes"] = loaded.store.footprint_bytes()


def test_micro_corpus_append(benchmark, document):
    """The splice itself: O(new nodes) column extends, no re-parse."""
    from repro.collection import Corpus

    def run():
        corpus = Corpus()
        corpus.add_document(document)
        return corpus

    corpus = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    benchmark.extra_info["nodes"] = len(corpus.document)


def test_micro_ir_most_specific(benchmark, document):
    engine = IREngine(document)
    expr = parse_ftexpr('"vintage" or "treasure"')
    engine.most_specific_matches(expr)  # warm

    def run():
        engine._most_specific_cache.clear()
        return engine.most_specific_matches(expr)

    matches = benchmark(run)
    benchmark.extra_info["matches"] = len(matches)
